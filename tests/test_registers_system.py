"""Unit tests for the cluster builder and configuration."""

import pytest

from repro.registers.system import (Cluster, ClusterConfig, build_mwmr,
                                    build_swmr, build_swsr_regular)
from repro.sim.errors import SimulationLimitReached
from repro.sim.network import AsyncDelay, SyncDelay


def test_config_delay_model_matches_timing_mode():
    assert isinstance(ClusterConfig(synchronous=False).delay_model(),
                      AsyncDelay)
    assert isinstance(ClusterConfig(synchronous=True).delay_model(),
                      SyncDelay)


def test_cluster_creates_n_servers():
    cluster = Cluster(ClusterConfig(n=9, t=1))
    assert len(cluster.servers) == 9
    assert cluster.server_ids == [f"s{i}" for i in range(1, 10)]


def test_server_lookup():
    cluster = Cluster(ClusterConfig(n=9, t=1))
    assert cluster.server("s3").pid == "s3"
    with pytest.raises(KeyError):
        cluster.server("s99")


def test_resilience_enforced_at_construction():
    with pytest.raises(ValueError):
        Cluster(ClusterConfig(n=8, t=1))
    Cluster(ClusterConfig(n=8, t=1, enforce_resilience=False))


def test_sync_params_carry_delay_bound():
    cluster = Cluster(ClusterConfig(n=4, t=1, synchronous=True,
                                    delay_bound=2.5))
    assert cluster.params.delay_bound == 2.5
    assert cluster.params.synchronous


def test_async_params_have_no_delay_bound():
    cluster = Cluster(ClusterConfig(n=9, t=1))
    assert cluster.params.delay_bound is None


def test_unknown_transport_rejected():
    cluster = Cluster(ClusterConfig(n=9, t=1, transport="pigeon"))
    with pytest.raises(ValueError):
        cluster.make_client("c")


def test_clients_are_tracked():
    cluster = Cluster(ClusterConfig(n=9, t=1))
    cluster.make_client("a")
    cluster.make_client("b")
    assert [client.pid for client in cluster.clients] == ["a", "b"]


def test_run_ops_raises_on_nontermination():
    cluster = Cluster(ClusterConfig(n=9, t=1))
    writer, reader = build_swsr_regular(cluster)
    # make every server silent: reads/writes can never gather acks.
    # (This exceeds t, which is exactly the point of the test.)
    from repro.faults.byzantine import SilentStrategy
    for server in cluster.servers:
        server.strategy = SilentStrategy()
        server.confirm_enabled = False
    handle = writer.write("lost")
    with pytest.raises(SimulationLimitReached):
        cluster.run_ops([handle], max_events=50_000)


def test_now_tracks_scheduler():
    cluster = Cluster(ClusterConfig(n=9, t=1))
    assert cluster.now == 0.0
    cluster.scheduler.schedule(4.0, lambda: None)
    cluster.run()
    assert cluster.now == 4.0


def test_build_swmr_registers_clients():
    cluster = Cluster(ClusterConfig(n=9, t=1))
    register = build_swmr(cluster, ["r1", "r2"])
    assert set(register.readers) == {"r1", "r2"}
    assert len(cluster.clients) == 3  # writer + 2 readers


def test_build_mwmr_names_processes():
    cluster = Cluster(ClusterConfig(n=9, t=1))
    register = build_mwmr(cluster, 3)
    assert [process.pid for process in register.processes] == \
        ["p1", "p2", "p3"]


def test_mwmr_epoch_parameter_validated():
    cluster = Cluster(ClusterConfig(n=9, t=1))
    with pytest.raises(ValueError):
        build_mwmr(cluster, 4, k=2)  # k must be >= m
