"""Tests of the MWMR atomic register (Figure 4 / Theorem 4)."""

import pytest

from repro.checkers.atomicity import check_linearizable
from repro.checkers.history import History
from repro.faults.byzantine import strategy_factory
from repro.faults.transient import TransientFaultInjector
from repro.registers.epochs import Epoch, EpochLabeling
from repro.registers.mwmr import is_valid_triple
from repro.registers.system import Cluster, ClusterConfig, build_mwmr
from repro.workloads.scenarios import run_mwmr_scenario


def make_system(m=3, n=9, t=1, seed=0, seq_bound=2 ** 64, **kwargs):
    cluster = Cluster(ClusterConfig(n=n, t=t, seed=seed, **kwargs))
    register = build_mwmr(cluster, m, seq_bound=seq_bound)
    return cluster, register


def run_op(cluster, handle, max_events=2_000_000):
    cluster.run_ops([handle], max_events=max_events)
    return handle.result


class TestBasics:
    def test_any_process_reads_any_write(self):
        cluster, register = make_system()
        run_op(cluster, register.write("p1", "from-p1"))
        assert run_op(cluster, register.read("p3")) == "from-p1"

    def test_writes_by_different_processes_ordered(self):
        cluster, register = make_system()
        run_op(cluster, register.write("p1", "first"))
        run_op(cluster, register.write("p2", "second"))
        run_op(cluster, register.write("p3", "third"))
        for pid in ("p1", "p2", "p3"):
            assert run_op(cluster, register.read(pid)) == "third"

    def test_sequence_numbers_advance_across_writers(self):
        cluster, register = make_system()
        run_op(cluster, register.write("p1", "a"))
        run_op(cluster, register.write("p2", "b"))
        # p2's write must carry a higher (epoch, seq) than p1's
        entries_handle = register.read("p1")
        run_op(cluster, entries_handle)
        assert entries_handle.result == "b"

    def test_initial_read(self):
        cluster, register = make_system()
        assert run_op(cluster, register.read("p2")) is None

    def test_unknown_process_rejected(self):
        cluster, register = make_system()
        with pytest.raises(KeyError):
            register.write("p9", "nope")


class TestEpochRenewal:
    def test_seq_bound_exhaustion_starts_new_epoch(self):
        cluster, register = make_system(seq_bound=3, seed=2)
        initial_epoch = register.labeling.initial()
        for index in range(5):
            run_op(cluster, register.write("p1", f"v{index}"))
        assert run_op(cluster, register.read("p2")) == "v4"
        # at least one renewal must have happened (seq crossed the bound)
        role = register.roles[0]
        final = run_op(cluster, register.read("p1"))
        assert final == "v4"

    def test_corrupted_incomparable_epochs_force_renewal(self):
        cluster, register = make_system(seed=3)
        run_op(cluster, register.write("p1", "before"))
        # build an antichain by corrupting two SWMR registers' stored epochs
        labeling = register.labeling
        a = Epoch(1, frozenset({2, 3, 4}))
        b = Epoch(2, frozenset({1, 3, 4}))
        assert labeling.max_epoch([a, b]) is None
        for server in cluster.servers:
            for automaton_id, automaton in server.automatons.items():
                if automaton_id.startswith("mwmr/0/"):
                    automaton.last_val = (1, ("x", a, 1))
                if automaton_id.startswith("mwmr/1/"):
                    automaton.last_val = (1, ("y", b, 1))
        # next operation must renew the epoch and still terminate correctly
        run_op(cluster, register.write("p3", "after"))
        assert run_op(cluster, register.read("p2")) == "after"

    def test_read_renewal_path_writes_back(self):
        """Line 11: a read that renews publishes the new epoch."""
        cluster, register = make_system(seed=4)
        labeling = register.labeling
        a = Epoch(1, frozenset({2, 3, 4}))
        b = Epoch(2, frozenset({1, 3, 4}))
        for server in cluster.servers:
            for automaton_id, automaton in server.automatons.items():
                if automaton_id.startswith("mwmr/0/"):
                    automaton.last_val = (1, ("x", a, 1))
                if automaton_id.startswith("mwmr/1/"):
                    automaton.last_val = (1, ("y", b, 1))
        result = run_op(cluster, register.read("p1"))
        # afterwards a max epoch exists again: writes proceed normally
        run_op(cluster, register.write("p2", "post"))
        assert run_op(cluster, register.read("p3")) == "post"


class TestValidTriple:
    def test_accepts_proper_triple(self):
        labeling = EpochLabeling(3)
        triple = ("v", labeling.initial(), 5)
        assert is_valid_triple(triple, labeling, 2 ** 64)

    def test_rejects_garbage(self):
        labeling = EpochLabeling(3)
        assert not is_valid_triple("junk", labeling, 100)
        assert not is_valid_triple(("v", "not-epoch", 5), labeling, 100)
        assert not is_valid_triple(("v", labeling.initial(), -1),
                                   labeling, 100)
        assert not is_valid_triple(("v", labeling.initial(), 101),
                                   labeling, 100)


class TestConsistency:
    def test_sequential_history_linearizes(self):
        result = run_mwmr_scenario(m=3, n=9, t=1, seed=5, ops_per_process=2)
        assert result.completed
        outcome = check_linearizable(result.history)
        assert outcome.ok

    def test_concurrent_history_linearizes(self):
        result = run_mwmr_scenario(m=3, n=9, t=1, seed=6, ops_per_process=2,
                                   concurrent=True)
        assert result.completed
        assert check_linearizable(result.history).ok

    def test_with_byzantine_server(self):
        result = run_mwmr_scenario(m=3, n=9, t=1, seed=7, ops_per_process=2,
                                   byzantine_count=1,
                                   byzantine_strategy="random-garbage")
        assert result.completed
        assert check_linearizable(result.history).ok

    def test_stabilizes_after_partial_corruption(self):
        result = run_mwmr_scenario(m=2, n=9, t=1, seed=8, ops_per_process=2,
                                   corruption_times=(2.0,),
                                   corruption_fraction=0.3)
        assert result.completed
        # post-corruption ops (all of them: workload starts after tau_no_tr)
        # must linearize
        assert check_linearizable(result.history).ok

    def test_two_processes_small(self):
        result = run_mwmr_scenario(m=2, n=9, t=1, seed=9, ops_per_process=3)
        assert result.completed
        assert check_linearizable(result.history).ok


class TestPracticallyStabilizingCaveats:
    def test_reader_renewal_at_exhaustion_publishes_own_value(self):
        """Faithful Figure-4 behaviour: when the register sits exactly at

        ``seq == bound``, a *read* triggers the renewal of line 11 and
        writes back its own (possibly stale) value with the new epoch —
        the read returns that value, losing the latest write.  Reaching
        this state needs ``2^64`` writes with the paper's bound, hence
        "practically" stabilizing.
        """
        cluster, register = make_system(seq_bound=3, seed=12)
        # writes park REG[0] at seq == 3 == bound (1, 2, 3)
        for index in range(3):
            run_op(cluster, register.write("p1", f"v{index}"))
        result = run_op(cluster, register.read("p2"))
        assert result is None  # p2's own register value, not v2


class TestLiveness:
    def test_full_corruption_without_rewrite_blocks_the_scan(self):
        """A documented liveness gap of the extended abstract: if *every*

        server copy of some ``REG[j]`` is corrupted to distinct values and
        ``p_j`` never writes again, readers of ``REG[j]`` find no quorum and
        loop forever (Lemma 2's termination needs a post-corruption write).
        The MWMR scan runs before the repairing write, so full corruption
        of all registers deadlocks — surfaced as non-completion.
        """
        result = run_mwmr_scenario(m=2, n=9, t=1, seed=8, ops_per_process=1,
                                   corruption_times=(2.0,),
                                   corruption_fraction=1.0,
                                   max_events=150_000)
        assert not result.completed
