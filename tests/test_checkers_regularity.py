"""Unit tests for the regular-register checker (hand-built histories)."""

import pytest

from repro.checkers.history import History
from repro.checkers.regularity import (NO_INITIAL, allowed_values,
                                       check_regularity, is_regular)


def seq_history():
    """w(a) [0,1]  r->a [2,3]  w(b) [4,5]  r->b [6,7] — fully sequential."""
    history = History()
    history.add("write", "w", "a", 0.0, 1.0)
    history.add("read", "r", "a", 2.0, 3.0)
    history.add("write", "w", "b", 4.0, 5.0)
    history.add("read", "r", "b", 6.0, 7.0)
    return history


def test_sequential_history_is_regular():
    assert is_regular(seq_history())


def test_read_of_overwritten_value_flagged():
    history = History()
    history.add("write", "w", "a", 0.0, 1.0)
    history.add("write", "w", "b", 2.0, 3.0)
    history.add("read", "r", "a", 4.0, 5.0)  # stale: must be b
    violations = check_regularity(history)
    assert len(violations) == 1
    assert violations[0].returned == "a"
    assert violations[0].allowed == {"b"}


def test_read_of_never_written_value_flagged():
    history = History()
    history.add("write", "w", "a", 0.0, 1.0)
    history.add("read", "r", "ghost", 2.0, 3.0)
    assert len(check_regularity(history)) == 1


def test_concurrent_write_value_allowed():
    history = History()
    history.add("write", "w", "a", 0.0, 1.0)
    history.add("write", "w", "b", 2.0, 6.0)
    history.add("read", "r", "b", 3.0, 4.0)  # overlaps write(b): fine
    assert is_regular(history)


def test_concurrent_read_may_also_return_previous():
    history = History()
    history.add("write", "w", "a", 0.0, 1.0)
    history.add("write", "w", "b", 2.0, 6.0)
    history.add("read", "r", "a", 3.0, 4.0)  # last completed: also fine
    assert is_regular(history)


def test_two_concurrent_writes_both_allowed():
    history = History()
    history.add("write", "w", "a", 0.0, 10.0)
    read = history.add("read", "r", "?", 1.0, 2.0)
    allowed = allowed_values(history, read)
    assert allowed == {"a"}


def test_initial_value_used_before_first_write():
    history = History()
    history.add("read", "r", "init", 0.0, 1.0)
    assert is_regular(history, initial="init")
    assert not is_regular(history, initial="other")


def test_unconstrained_read_skipped_without_initial():
    history = History()
    history.add("read", "r", "anything", 0.0, 1.0)
    assert is_regular(history)  # no writes, no initial: unconstrained


def test_after_cutoff_ignores_early_violations():
    history = History()
    history.add("write", "w", "a", 0.0, 1.0)
    history.add("read", "r", "garbage", 2.0, 3.0)   # dirty (pre-stab)
    history.add("read", "r", "a", 10.0, 11.0)       # clean
    assert not is_regular(history)
    assert is_regular(history, after=5.0)


def test_multi_writer_rejected():
    history = History()
    history.add("write", "p1", "a", 0.0, 1.0)
    history.add("write", "p2", "b", 2.0, 3.0)
    with pytest.raises(ValueError):
        check_regularity(history)


def test_per_register_checking():
    history = History()
    history.add("write", "w", "a", 0.0, 1.0, register="x")
    history.add("write", "w", "b", 0.0, 1.0, register="y")
    history.add("read", "r", "a", 2.0, 3.0, register="x")
    history.add("read", "r", "a", 2.0, 3.0, register="y")  # wrong register!
    assert is_regular(history, register="x")
    assert not is_regular(history, register="y")


def test_new_old_inversion_is_still_regular():
    """Figure 1's point: regularity does NOT forbid the inversion."""
    history = History()
    history.add("write", "w", "v0", 0.0, 1.0)
    history.add("write", "w", "v1", 2.0, 10.0)      # long write
    history.add("read", "r", "v1", 3.0, 4.0)        # new value
    history.add("read", "r", "v0", 5.0, 6.0)        # old value again
    assert is_regular(history)


def test_violation_repr_readable():
    history = History()
    history.add("write", "w", "a", 0.0, 1.0)
    history.add("read", "r", "zzz", 2.0, 3.0)
    violation = check_regularity(history)[0]
    assert "zzz" in repr(violation)
