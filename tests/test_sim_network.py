"""Unit tests for the FIFO reliable network and delay models."""

import pytest

from repro.sim.errors import LinkError, UnknownProcessError
from repro.sim.network import (AsyncDelay, FixedDelay, Network, ScriptedDelay,
                               SyncDelay)
from repro.sim.process import Process
from repro.sim.random_source import RandomSource
from repro.sim.scheduler import Scheduler
from repro.sim.trace import Trace


class Recorder(Process):
    """Test process that records delivered messages with timestamps."""

    def __init__(self, pid, scheduler, trace):
        super().__init__(pid, scheduler, trace)
        self.received = []

    def on_message(self, src, message):
        self.received.append((self.scheduler.now, src, message))


def make_network(delay=None, seed=0):
    scheduler = Scheduler()
    trace = Trace()
    network = Network(scheduler, RandomSource(seed), trace,
                      default_delay=delay or FixedDelay(1.0))
    a = network.register(Recorder("a", scheduler, trace))
    b = network.register(Recorder("b", scheduler, trace))
    return network, scheduler, a, b


def test_message_delivered_after_delay():
    network, scheduler, a, b = make_network(FixedDelay(2.0))
    network.send("a", "b", "hello")
    scheduler.run()
    assert b.received == [(2.0, "a", "hello")]


def test_fifo_per_link_with_random_delays():
    network, scheduler, a, b = make_network(AsyncDelay(0.1, 10.0))
    for index in range(20):
        network.send("a", "b", index)
    scheduler.run()
    assert [message for _, _, message in b.received] == list(range(20))


def test_fifo_delivery_times_nondecreasing():
    network, scheduler, a, b = make_network(AsyncDelay(0.1, 10.0))
    for index in range(20):
        network.send("a", "b", index)
    scheduler.run()
    times = [time for time, _, _ in b.received]
    assert times == sorted(times)


def test_reverse_direction_is_independent_link():
    network, scheduler, a, b = make_network(FixedDelay(1.0))
    network.send("a", "b", "ping")
    network.send("b", "a", "pong")
    scheduler.run()
    assert a.received[0][2] == "pong"
    assert b.received[0][2] == "ping"


def test_unknown_destination_raises():
    network, scheduler, a, b = make_network()
    with pytest.raises(UnknownProcessError):
        network.send("a", "ghost", "boo")


def test_message_counters():
    network, scheduler, a, b = make_network()
    network.send("a", "b", 1)
    network.send("a", "b", 2)
    scheduler.run()
    assert network.messages_sent == 2
    assert network.messages_delivered == 2


def test_preload_delivers_garbage_first():
    network, scheduler, a, b = make_network(FixedDelay(5.0))
    network.preload("a", "b", ["junk1", "junk2"], spread=0.5)
    network.send("a", "b", "real")
    scheduler.run()
    assert [message for _, _, message in b.received] == \
        ["junk1", "junk2", "real"]


def test_sync_delay_respects_bound():
    model = SyncDelay(bound=2.0)
    rng = RandomSource(1).stream("x")
    samples = [model.sample("a", "b", None, rng) for _ in range(200)]
    assert all(0 < sample <= 2.0 for sample in samples)
    assert model.bound == 2.0


def test_async_delay_has_no_known_bound():
    model = AsyncDelay(0.1, 5.0)
    assert model.bound is None
    rng = RandomSource(1).stream("x")
    samples = [model.sample("a", "b", None, rng) for _ in range(200)]
    assert all(0.1 <= sample <= 5.0 for sample in samples)


def test_fixed_delay_validation():
    with pytest.raises(LinkError):
        FixedDelay(0.0)
    with pytest.raises(LinkError):
        SyncDelay(-1.0)
    with pytest.raises(LinkError):
        AsyncDelay(2.0, 1.0)


def test_scripted_delay_sees_endpoints_and_message():
    seen = []

    def chooser(src, dst, message, rng):
        seen.append((src, dst, message))
        return 1.0

    network, scheduler, a, b = make_network(ScriptedDelay(chooser))
    network.send("a", "b", "probe")
    scheduler.run()
    assert seen == [("a", "b", "probe")]


def test_scripted_delay_builds_exact_schedules():
    def chooser(src, dst, message, rng):
        return 10.0 if message == "slow" else 1.0

    network, scheduler, a, b = make_network(ScriptedDelay(chooser))
    network.send("a", "b", "slow")
    network.send("b", "a", "fast")
    scheduler.run()
    assert a.received[0][0] == 1.0
    assert b.received[0][0] == 10.0


def test_link_delay_model_override():
    network, scheduler, a, b = make_network(FixedDelay(1.0))
    network.link("a", "b", FixedDelay(7.0))
    network.send("a", "b", "x")
    scheduler.run()
    assert b.received[0][0] == 7.0


def test_deterministic_given_same_seed():
    def run(seed):
        network, scheduler, a, b = make_network(AsyncDelay(0.1, 3.0), seed)
        for index in range(5):
            network.send("a", "b", index)
        scheduler.run()
        return [time for time, _, _ in b.received]

    assert run(42) == run(42)
    assert run(42) != run(43)


def test_connect_all_creates_bidirectional_links():
    network, scheduler, a, b = make_network()
    network.connect_all(["a"], ["b"])
    assert ("a", "b") in network.links
    assert ("b", "a") in network.links


# ----------------------------------------------------------------------
# preload accounting, partitions and the fused fast path
# ----------------------------------------------------------------------
def test_preload_counts_as_sent_messages():
    network, scheduler, a, b = make_network(FixedDelay(5.0))
    network.preload("a", "b", ["junk1", "junk2"])
    assert network.messages_sent == 2
    assert network.links[("a", "b")].messages_sent == 2
    assert network.trace.count("send") == 2
    scheduler.run()
    assert network.messages_delivered == 2


def test_down_link_drops_and_counts():
    network, scheduler, a, b = make_network(FixedDelay(1.0))
    network.set_link_up("a", "b", up=False)
    network.send("a", "b", "lost")
    scheduler.run()
    assert b.received == []
    assert network.messages_dropped == 1
    assert network.links[("a", "b")].messages_dropped == 1
    assert network.messages_sent == 0
    assert network.trace.count("drop") == 1


def test_partition_and_heal_round_trip():
    network, scheduler, a, b = make_network(FixedDelay(1.0))
    network.set_partition(["b"])
    network.send("a", "b", "during")
    network.set_partition(["b"], up=True)
    network.send("a", "b", "after")
    scheduler.run()
    assert [message for _, _, message in b.received] == ["after"]
    assert network.messages_dropped == 1


def test_overlapping_partitions_do_not_heal_each_other():
    # regression: link down-votes are counted, so a link covered by two
    # partitions stays down until *both* have healed.
    scheduler = Scheduler()
    trace = Trace()
    network = Network(scheduler, RandomSource(0), trace,
                      default_delay=FixedDelay(1.0))
    a = network.register(Recorder("a", scheduler, trace))
    b = network.register(Recorder("b", scheduler, trace))
    network.register(Recorder("c", scheduler, trace))
    network.set_partition(["a"])          # cuts a<->b, a<->c
    network.set_partition(["b"])          # cuts b<->a, b<->c (a<->b twice)
    network.set_partition(["b"], up=True)
    network.send("a", "b", "still-cut")   # a's partition still covers it
    network.send("b", "c", "flows")
    network.set_partition(["a"], up=True)
    network.send("a", "b", "open-again")
    scheduler.run()
    assert [message for _, _, message in b.received] == ["open-again"]
    assert network.messages_dropped == 1


def test_in_flight_messages_survive_partition():
    network, scheduler, a, b = make_network(FixedDelay(5.0))
    network.send("a", "b", "already-sent")
    scheduler.run(until=1.0)
    network.set_partition(["b"])
    scheduler.run()
    assert [message for _, _, message in b.received] == ["already-sent"]


def test_fast_path_matches_recording_path():
    """Fused (counting/null) and labelled (full) deliveries must produce
    the same execution."""
    from repro.sim.trace import CountingTrace, NullTrace

    def run(trace):
        scheduler = Scheduler()
        network = Network(scheduler, RandomSource(5), trace,
                          default_delay=AsyncDelay(0.1, 3.0))
        a = network.register(Recorder("a", scheduler, trace))
        b = network.register(Recorder("b", scheduler, trace))
        for index in range(30):
            network.send("a", "b", index)
            network.send("b", "a", -index)
        scheduler.run()
        return (a.received, b.received, scheduler.events_processed,
                network.messages_sent, network.messages_delivered)

    full = run(Trace())
    counting = run(CountingTrace())
    null = run(NullTrace())
    assert full == counting == null
