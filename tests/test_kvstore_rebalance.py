"""Live resharding: the Rebalancer handoff protocol and the reshard
scenario family built on it."""

import json

import pytest

from repro.kvstore import Pipeline, Rebalancer, build_sharded_kv_store
from repro.workloads.spec import run_scenario


def filled_store(shard_count=2, seed=7, keys=8):
    store = build_sharded_kv_store(shard_count=shard_count, seed=seed)
    for index in range(keys):
        store.put_sync("c1", f"k{index}", f"v{index}")
    return store


class TestRebalancer:
    def test_split_preserves_every_keys_state(self):
        store = filled_store()
        report = Rebalancer(store).split(0)
        assert report.kind == "reshard_split"
        assert store.shard_count == 3
        for index in range(8):
            assert store.get_sync("c2", f"k{index}") == f"v{index}"

    def test_join_moves_keys_only_to_the_new_shard(self):
        store = filled_store(keys=12)
        before = {key: store.shard_for(key) for key in store.keys}
        report = Rebalancer(store).join()
        assert report.new_shard == store.shard_count - 1
        for key in report.moved_keys:
            assert store.shard_for(key) == report.new_shard
            assert before[key] != report.new_shard
        untouched = [key for key in store.keys
                     if key not in report.moved_keys]
        assert all(store.shard_for(key) == before[key]
                   for key in untouched)

    def test_merge_retires_the_source_shard(self):
        store = filled_store()
        Rebalancer(store).merge(0, into=1)
        assert store.ring.active_shards() == [1]
        for index in range(8):
            assert store.shard_for(f"k{index}") == 1
            assert store.get_sync("c2", f"k{index}") == f"v{index}"

    def test_transferred_subset_of_moved(self):
        """Keys that moved but never materialized hold no state — they
        appear in ``moved_keys`` but not in ``transferred``."""
        store = build_sharded_kv_store(shard_count=2, seed=7)
        store.put_sync("c1", "written", 1)
        report = Rebalancer(store).merge(store.shard_for("written"),
                                         into=1 - store.shard_for("written"))
        assert set(report.transferred) <= set(report.moved_keys)
        assert "written" in report.transferred

    def test_drains_pipeline_before_mutating(self):
        """Operations in flight when the rebalance starts complete on
        the owner they were routed to — the drain half of the handoff."""
        store = filled_store()
        pipe = Pipeline(store)
        pending = [pipe.put("c1", f"k{index}", f"new{index}")
                   for index in range(8)]
        owners = [handle.shard for handle in pending]
        Rebalancer(store, pipeline=pipe).split(0)
        assert all(handle.done for handle in pending)
        assert [handle.shard for handle in pending] == owners
        for index in range(8):
            assert store.get_sync("c2", f"k{index}") == f"new{index}"

    def test_transfers_are_observable_and_use_migration_client(self):
        store = filled_store()
        observed = []
        rebalancer = Rebalancer(store, observe=observed.append,
                                migration_client=lambda key: "c2")
        report = rebalancer.split(0)
        # one read (old owner) + one write (new owner) per transfer
        assert len(observed) == 2 * len(report.transferred)
        assert all(handle.process_id == "c2" for handle in observed)
        kinds = [handle.meta["kind"] for handle in observed]
        assert set(kinds) <= {"read", "write"}

    def test_transfer_timestamps_are_monotone(self):
        """Clock alignment: every transfer write must not precede the
        read it copies, even though shards tick independent clocks."""
        store = filled_store(shard_count=3, seed=21, keys=10)
        observed = []
        Rebalancer(store, observe=observed.append).merge(0, into=2)
        reads = {handle.meta["register"]: handle.response_time
                 for handle in observed if handle.meta["kind"] == "read"}
        writes = {handle.meta["register"]: handle.invoke_time
                  for handle in observed if handle.meta["kind"] == "write"}
        assert set(writes) == set(reads)
        for register, invoked in writes.items():
            assert invoked >= reads[register]

    def test_apply_event_rejects_cluster_scoped_kinds(self):
        from repro.faults.schedule import FaultTimeline
        store = filled_store()
        event = FaultTimeline().burst(1.0).events[0]
        with pytest.raises(ValueError):
            Rebalancer(store).apply_event(event)

    def test_report_is_json_able(self):
        store = filled_store()
        report = Rebalancer(store).split(0)
        round_tripped = json.loads(json.dumps(report.to_dict()))
        assert round_tripped["kind"] == "reshard_split"
        assert round_tripped["new_shard"] == 2
        assert sorted(round_tripped) == ["dests", "kind", "moved_keys",
                                         "new_shard", "sources", "time",
                                         "transferred"]

    def test_reports_accumulate(self):
        store = filled_store()
        rebalancer = Rebalancer(store)
        rebalancer.split(0)
        rebalancer.migrate(1, 2, count=1)
        assert [report.kind for report in rebalancer.reports] == \
            ["reshard_split", "migrate_vnodes"]


PLAN = {"events": [
    {"time": 6.0, "kind": "reshard_split", "args": {"shard": 0}},
    {"time": 12.0, "kind": "migrate_vnodes",
     "args": {"source": 1, "dest": 2, "count": 1}},
]}


class TestReshardScenario:
    def test_default_plan_splits_and_linearizes(self):
        result = run_scenario("reshard", seed=3, num_keys=3, rounds=2)
        assert result.completed and result.linearizable
        assert [report.kind for report in result.rebalances] == \
            ["reshard_split"]
        assert result.store.shard_count == 3

    def test_one_epoch_tau_per_applied_event(self):
        result = run_scenario("reshard", seed=3, num_keys=4, rounds=2,
                              vnodes=4, reshard_plan=PLAN)
        assert len(result.epoch_taus) == len(result.rebalances) == 2
        for entry, report in zip(result.epoch_taus, result.rebalances):
            assert report.kind in entry["label"]
            assert entry["tau"] is not None
            assert entry["tau"] >= entry["start"]

    def test_strict_mode_passes_on_a_clean_run(self):
        result = run_scenario("reshard", seed=5, num_keys=3, rounds=2,
                              vnodes=4, strict=True, reshard_plan=PLAN)
        assert all(result.per_key_linearizable.values())

    def test_summaries_are_deterministic(self):
        def run():
            return run_scenario("reshard", seed=11, num_keys=4, rounds=2,
                                vnodes=4, corruption_times=[2.0],
                                reshard_plan=PLAN).summarize().to_dict()

        first, second = run(), run()
        assert json.dumps(first, sort_keys=True) == \
            json.dumps(second, sort_keys=True)
        assert first["epoch_taus"] is not None

    def test_survives_faults_during_migration(self):
        result = run_scenario("reshard", seed=9, num_keys=4, rounds=2,
                              vnodes=4, corruption_times=[2.0, 8.0],
                              corruption_fraction=0.2, reshard_plan=PLAN)
        assert result.completed and result.linearizable
        assert all(entry["tau"] is not None
                   for entry in result.epoch_taus)

    def test_rejects_cluster_scoped_plan_events(self):
        with pytest.raises(ValueError, match="store-scoped"):
            run_scenario("reshard", seed=0, reshard_plan={"events": [
                {"time": 1.0, "kind": "burst", "args": {}}]})

    def test_rejects_plans_referencing_future_shards(self):
        with pytest.raises(ValueError, match="exist at that point"):
            run_scenario("reshard", seed=0, shard_count=2,
                         reshard_plan={"events": [
                             {"time": 1.0, "kind": "migrate_vnodes",
                              "args": {"source": 0, "dest": 5}}]})

    def test_split_allocation_is_replayed_statically(self):
        # shard 2 does not exist up front but does once the split ran
        result = run_scenario("reshard", seed=3, num_keys=2, rounds=1,
                              vnodes=4, reshard_plan=PLAN)
        assert result.completed


class TestReshardFuzzFamily:
    def test_generator_is_pure_and_round_trips(self):
        from repro.fuzz import ReshardFuzzCase, generate_reshard_case
        from repro.fuzz.gen import case_from_dict
        for seed in (0, 1, 7, 20260808):
            case = generate_reshard_case(seed)
            assert case == generate_reshard_case(seed)
            assert isinstance(case, ReshardFuzzCase)
            clone = case_from_dict(json.loads(json.dumps(case.to_dict())))
            assert clone == case

    def test_generated_plans_are_statically_feasible(self):
        from repro.faults.schedule import RESHARD_KINDS
        from repro.fuzz.gen import generate_reshard_case
        for seed in range(16):
            case = generate_reshard_case(seed)
            plan = case.plan_events()
            assert plan, "every reshard case carries a plan"
            times = [event["time"] for event in plan]
            assert times == sorted(times) and len(set(times)) == len(times)
            assert all(event["kind"] in RESHARD_KINDS for event in plan)
            # the scenario's own static validation must accept it
            kwargs = case.scenario_kwargs()
            from repro.workloads.scenarios import _reshard_plan
            _reshard_plan(kwargs["reshard_plan"], case.shard_count)

    def test_shrink_ladder_keeps_the_ring_shape(self):
        from repro.fuzz.gen import generate_reshard_case
        from repro.fuzz.shrink import _parameter_candidates
        case = generate_reshard_case(42)
        for label, candidate in _parameter_candidates(case):
            assert candidate.shard_count == case.shard_count, label
            assert candidate.vnodes == case.vnodes, label
            assert candidate.timeline == case.timeline, label
