"""Soak observability: metrics snapshots and the fire-once alert hook.

``MetricsEmitter`` rides an observation stream like any online checker:
periodic JSON-lines snapshots (ops, rates, per-register τ, checker
window occupancy, violation counts) in simulated time, plus an
``alert_on_violation`` callback that fires **exactly once** — on the
first snapshot boundary where any checker reports a violation.
"""

import json
import os

from repro.capture import DEFAULT_EVERY, MetricsEmitter
from repro.checkers.online import OnlineTauTracker
from repro.checkers.stream import ObservationStream
from repro.fuzz.replay import ReplayArtifact
from repro.workloads.scenarios import INITIAL
from repro.workloads.spec import ScenarioSpec, run_scenario

REPLAY_DIR = os.path.join(os.path.dirname(__file__), "replays")

SOAK = dict(seed=3, num_writes=120, num_reads=120,
            write_window=8, read_window=8, max_records=8)


def run_soak_with_metrics(tmp_path, every=30.0):
    out = str(tmp_path / "metrics.jsonl")
    spec = ScenarioSpec("soak", SOAK, metrics_every=every,
                        metrics_out=out)
    result = spec.run()
    snaps = [json.loads(line) for line in open(out, encoding="utf-8")]
    return result, snaps, out


def test_snapshots_are_valid_monotone_jsonlines(tmp_path):
    result, snaps, _ = run_soak_with_metrics(tmp_path)
    assert len(snaps) >= 3
    last_t = float("-inf")
    for snap in snaps:
        assert set(snap) == {"alert", "final", "ops", "ops_per_sec",
                             "reads", "t", "taus", "violations",
                             "window", "writes"}
        assert snap["t"] >= last_t
        last_t = snap["t"]
    assert snaps[-1]["final"] is True
    assert all(snap["final"] is False for snap in snaps[:-1])
    assert snaps[-1]["ops"] == result.summarize().ops
    emitter = result.extra["metrics"]
    assert [snap["t"] for snap in snaps] == \
        [snap["t"] for snap in emitter.snapshots]


def test_clean_soak_never_alerts_and_windows_stay_bounded(tmp_path):
    result, snaps, out = run_soak_with_metrics(tmp_path)
    assert result.extra["metrics"].alerts == 0
    assert all(snap["alert"] is False for snap in snaps)
    assert all(snap["violations"] == 0 for snap in snaps)
    # greppable from CI: the serialized form spells the key out
    text = open(out, encoding="utf-8").read()
    assert '"alert": true' not in text
    # bounded-window checkers: occupancy plateaus instead of tracking
    # the op count (the run is sized so eviction demonstrably engages).
    windows = [snap["window"] for snap in snaps]
    tail = windows[-4:]
    assert max(tail) == min(tail), f"occupancy still growing: {windows}"
    assert max(windows) < snaps[-1]["ops"]


def test_alert_fires_exactly_once_on_violation():
    """The committed wsn-jump counterexample is the violating input."""
    artifact = ReplayArtifact.load(
        os.path.join(REPLAY_DIR, "wsn-jump-atomic.json"))
    result = run_scenario("swsr", **artifact.case.scenario_kwargs())
    ops = sorted(result.history, key=lambda op: op.response)

    fired = []
    emitter = MetricsEmitter(every=1000.0,
                             alert_on_violation=fired.append)
    tracker = OnlineTauTracker(mode="atomic", initial=INITIAL)
    stream = ObservationStream(checkers=[tracker, emitter],
                               keep_history=False)
    emitter.bind(stream)
    for op in ops:
        stream.observe(op)
    stream.close()

    assert tracker.violation_count >= 1
    assert len(fired) == 1, "alert must fire exactly once"
    assert emitter.alerts == 1
    alert = fired[0]
    assert alert["alert"] is True and alert["violations"] >= 1
    # exactly one alert snapshot, and closing does not re-fire
    alerted = [snap for snap in emitter.snapshots if snap["alert"]]
    assert len(alerted) == 1 and alerted[0] is alert
    assert emitter.snapshots[-1]["final"] is True


def test_default_cadence_and_unbound_emitter():
    emitter = MetricsEmitter()
    assert emitter.every == DEFAULT_EVERY
    # no stream, no sources: finish still produces the final snapshot
    emitter.finish()
    assert len(emitter.snapshots) == 1
    assert emitter.snapshots[0]["final"] is True


def test_metrics_without_capture_file():
    """metrics_every alone keeps snapshots in memory (no file)."""
    spec = ScenarioSpec("soak", SOAK, metrics_every=60.0)
    result = spec.run()
    emitter = result.extra["metrics"]
    assert emitter.snapshots
    assert emitter.snapshots[-1]["final"] is True


def test_parallel_run_rejects_metrics():
    import pytest
    with pytest.raises(ValueError):
        ScenarioSpec("kv", dict(shard_count=2, parallel=2),
                     metrics_every=10.0)
    with pytest.raises(ValueError):
        ScenarioSpec("soak", dict(shards=2), capture="x.jsonl")
