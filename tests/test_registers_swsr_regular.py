"""Behavioural tests of the SWSR regular register (Figure 2 / Theorem 1)."""

import pytest

from repro.checkers.history import History
from repro.checkers.regularity import check_regularity
from repro.faults.byzantine import strategy_factory
from repro.faults.transient import TransientFaultInjector
from repro.registers.messages import BOT
from repro.registers.system import Cluster, ClusterConfig, build_swsr_regular
from repro.workloads.scenarios import run_swsr_scenario


def make_system(n=9, t=1, seed=0, **kwargs):
    cluster = Cluster(ClusterConfig(n=n, t=t, seed=seed, **kwargs))
    writer, reader = build_swsr_regular(cluster, initial="v_init")
    return cluster, writer, reader


def run_op(cluster, handle, max_events=500_000):
    cluster.run_ops([handle], max_events=max_events)
    return handle.result


class TestBasicOperation:
    def test_read_returns_last_written_value(self):
        cluster, writer, reader = make_system()
        run_op(cluster, writer.write("apple"))
        assert run_op(cluster, reader.read()) == "apple"

    def test_sequence_of_writes_and_reads(self):
        cluster, writer, reader = make_system()
        for value in ("a", "b", "c"):
            run_op(cluster, writer.write(value))
            assert run_op(cluster, reader.read()) == value

    def test_read_before_any_write_returns_initial(self):
        cluster, writer, reader = make_system()
        assert run_op(cluster, reader.read()) == "v_init"

    def test_repeated_reads_stable_without_writes(self):
        cluster, writer, reader = make_system()
        run_op(cluster, writer.write("fixed"))
        for _ in range(3):
            assert run_op(cluster, reader.read()) == "fixed"

    def test_server_state_after_write(self):
        cluster, writer, reader = make_system()
        run_op(cluster, writer.write("x"))
        cluster.run()  # drain so every correct server catches up
        holding = [server for server in cluster.servers
                   if server.automatons["reg"].last_val == "x"]
        assert len(holding) == 9

    def test_resilience_bound_enforced_by_default(self):
        with pytest.raises(ValueError):
            make_system(n=8, t=1)

    def test_beyond_bound_allowed_when_disabled(self):
        cluster, writer, reader = make_system(n=8, t=1,
                                              enforce_resilience=False)
        run_op(cluster, writer.write("yolo"))


class TestByzantineTolerance:
    @pytest.mark.parametrize("strategy", ["silent", "crash", "random-garbage",
                                          "stale", "equivocate",
                                          "inversion-attack", "flip-flop"])
    def test_single_byzantine_server(self, strategy):
        cluster, writer, reader = make_system(seed=11)
        cluster.make_byzantine(["s1"], strategy_factory(strategy, cluster))
        run_op(cluster, writer.write("safe"))
        assert run_op(cluster, reader.read()) == "safe"

    @pytest.mark.parametrize("strategy", ["silent", "random-garbage", "stale"])
    def test_t_equals_two(self, strategy):
        cluster, writer, reader = make_system(n=17, t=2, seed=12)
        cluster.make_byzantine(["s1", "s2"],
                               strategy_factory(strategy, cluster))
        run_op(cluster, writer.write("robust"))
        assert run_op(cluster, reader.read()) == "robust"

    def test_mixed_strategies(self):
        cluster, writer, reader = make_system(n=17, t=2, seed=13)
        cluster.make_byzantine(["s1"], strategy_factory("silent", cluster))
        cluster.make_byzantine(["s2"],
                               strategy_factory("random-garbage", cluster))
        run_op(cluster, writer.write("mix"))
        assert run_op(cluster, reader.read()) == "mix"

    def test_byzantine_recovery(self):
        """A server turning correct again participates normally."""
        cluster, writer, reader = make_system(seed=14)
        cluster.make_byzantine(["s1"],
                               strategy_factory("random-garbage", cluster))
        run_op(cluster, writer.write("one"))
        cluster.make_byzantine(["s1"], None)  # recovers (state may be stale)
        run_op(cluster, writer.write("two"))
        assert run_op(cluster, reader.read()) == "two"


class TestTransientFailures:
    def test_stabilizes_after_total_server_corruption(self):
        cluster, writer, reader = make_system(seed=21)
        injector = TransientFaultInjector.for_cluster(cluster)
        injector.corrupt_all(cluster.servers)
        run_op(cluster, writer.write("heal"))  # first write after tau_no_tr
        assert run_op(cluster, reader.read()) == "heal"

    def test_stabilizes_after_client_corruption(self):
        cluster, writer, reader = make_system(seed=22)
        injector = TransientFaultInjector.for_cluster(cluster)
        injector.corrupt_all([writer, reader])
        run_op(cluster, writer.write("heal"))
        assert run_op(cluster, reader.read()) == "heal"

    def test_reads_before_first_write_may_be_arbitrary(self):
        """Pre-stabilization output is unconstrained — but must terminate

        once a quorum of equal (even corrupted-equal) values exists; here
        the servers agree on the initial value so the read terminates.
        """
        cluster, writer, reader = make_system(seed=23)
        injector = TransientFaultInjector.for_cluster(cluster)
        injector.corrupt_all([reader])
        result = run_op(cluster, reader.read())
        assert result is not None  # terminated; value unconstrained

    def test_link_garbage_is_survived(self):
        cluster, writer, reader = make_system(seed=24)
        injector = TransientFaultInjector.for_cluster(cluster)
        injector.garbage_everywhere(["w", "r"], cluster.server_ids,
                                    per_link=2)
        run_op(cluster, writer.write("clean"))
        assert run_op(cluster, reader.read()) == "clean"


class TestEventualRegularity:
    def test_scenario_regular_after_corruption(self):
        result = run_swsr_scenario(kind="regular", n=9, t=1, seed=31,
                                   num_writes=5, num_reads=5,
                                   corruption_times=(2.0, 4.0),
                                   link_garbage=1, byzantine_count=1)
        assert result.completed
        assert result.report.stable
        assert result.report.tau_stab is not None

    def test_concurrent_reads_and_writes_still_regular(self):
        result = run_swsr_scenario(kind="regular", n=9, t=1, seed=32,
                                   num_writes=6, num_reads=6,
                                   reader_offset=0.2,  # heavy overlap
                                   byzantine_count=1)
        assert result.completed
        violations = check_regularity(result.history, after=result.tau_no_tr,
                                      initial="v_init")
        assert violations == []

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_regularity_across_seeds(self, seed):
        result = run_swsr_scenario(kind="regular", n=9, t=1, seed=seed,
                                   num_writes=4, num_reads=4,
                                   corruption_times=(3.0,),
                                   byzantine_count=1,
                                   byzantine_strategy="stale")
        assert result.completed
        assert result.report.stable

    def test_larger_cluster(self):
        result = run_swsr_scenario(kind="regular", n=25, t=3, seed=33,
                                   num_writes=3, num_reads=3,
                                   byzantine_count=3)
        assert result.completed
        assert result.report.stable


class TestHelpingMechanism:
    def test_writer_refreshes_helping_values(self):
        """After a write, a helping quorum exists at the servers (Claim C)."""
        cluster, writer, reader = make_system(seed=41)
        run_op(cluster, writer.write("helped"))
        cluster.run()
        helping = [server.automatons["reg"].helping_val
                   for server in cluster.servers]
        assert helping.count("helped") >= 4 * cluster.params.t + 1

    def test_new_read_resets_helping(self):
        cluster, writer, reader = make_system(seed=42)
        run_op(cluster, writer.write("x"))
        run_op(cluster, reader.read())
        cluster.run()
        helping = [server.automatons["reg"].helping_val
                   for server in cluster.servers]
        assert helping.count(BOT) == 9
