"""Unit tests for bounded-capacity lossy channels."""

import pytest

from repro.datalink.bounded_link import BoundedCapacityLink
from repro.sim.network import FixedDelay
from repro.sim.scheduler import Scheduler


def make_link(cap=2, delay=1.0):
    scheduler = Scheduler()
    received = []
    link = BoundedCapacityLink(scheduler, "a", "b", cap,
                               deliver=received.append,
                               delay_model=FixedDelay(delay))
    return scheduler, link, received


def test_delivers_within_capacity():
    scheduler, link, received = make_link(cap=3)
    assert link.send("p1")
    assert link.send("p2")
    scheduler.run()
    assert received == ["p1", "p2"]


def test_drops_beyond_capacity():
    scheduler, link, received = make_link(cap=2)
    assert link.send("p1")
    assert link.send("p2")
    assert not link.send("p3")  # dropped
    scheduler.run()
    assert received == ["p1", "p2"]
    assert link.dropped == 1


def test_capacity_frees_after_delivery():
    scheduler, link, received = make_link(cap=1)
    link.send("p1")
    scheduler.run()
    assert link.send("p2")
    scheduler.run()
    assert received == ["p1", "p2"]


def test_fifo_order():
    scheduler, link, received = make_link(cap=5)
    for index in range(5):
        link.send(index)
    scheduler.run()
    assert received == list(range(5))


def test_preload_fills_up_to_capacity():
    scheduler, link, received = make_link(cap=2)
    placed = link.preload(["g1", "g2", "g3"])
    assert placed == 2
    scheduler.run()
    assert received == ["g1", "g2"]


def test_counters():
    scheduler, link, received = make_link(cap=1)
    link.send("a")
    link.send("b")  # dropped
    scheduler.run()
    assert link.offered == 2
    assert link.delivered == 1
    assert link.dropped == 1


def test_invalid_capacity_rejected():
    scheduler = Scheduler()
    with pytest.raises(ValueError):
        BoundedCapacityLink(scheduler, "a", "b", 0, deliver=lambda p: None)


def test_in_flight_tracking():
    scheduler, link, received = make_link(cap=3)
    link.send("a")
    link.send("b")
    assert link.in_flight == 2
    scheduler.run()
    assert link.in_flight == 0
