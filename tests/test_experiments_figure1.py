"""Tests of the deterministic Figure-1 reproduction."""

from repro.checkers.atomicity import check_linearizable
from repro.experiments.figure1 import figure1_comparison, run_figure1


def test_regular_register_shows_new_old_inversion():
    result = run_figure1("regular")
    assert result.first_read == "v1"
    assert result.second_read == "v0"
    assert result.inverted


def test_inverted_history_is_not_linearizable():
    result = run_figure1("regular")
    assert not check_linearizable(result.history, initial="v_init").ok


def test_atomic_register_eliminates_the_inversion():
    result = run_figure1("atomic")
    assert not result.inverted


def test_atomic_history_linearizes():
    result = run_figure1("atomic")
    assert check_linearizable(result.history, initial="v_init").ok


def test_comparison_pairs_both_kinds():
    results = figure1_comparison()
    assert results["regular"].inverted
    assert not results["atomic"].inverted


def test_inverted_reads_are_still_regular():
    """Figure 1's caption: the inversion does not violate *regularity*."""
    from repro.checkers.regularity import is_regular
    result = run_figure1("regular")
    assert is_regular(result.history, initial="v_init")
