"""Tests for the ss-broadcast abstraction (both transports).

Checks the six properties of Section 2.1 as far as they are observable:
termination, eventual delivery, synchronized delivery, no duplication,
validity, order delivery.
"""

import pytest

from repro.registers.base import RegisterClientProcess, ServerProcess
from repro.registers.system import Cluster, ClusterConfig
from repro.sim.process import Predicate


class DeliveryLog:
    """Per-server log of ss-delivered payloads."""

    def __init__(self, cluster):
        self.deliveries = {server.pid: [] for server in cluster.servers}
        for server in cluster.servers:
            original = server.ss_deliver

            def logged(client, payload, phase, pid=server.pid,
                       original=original):
                self.deliveries[pid].append(payload)
                original(client, payload, phase)

            server.ss_deliver = logged


def broadcast_and_wait(cluster, client, payload, max_events=200_000):
    handle = client.start_operation(
        "bc", client.ss_broadcast(payload))
    cluster.scheduler.run_until(lambda: handle.done, max_events=max_events)
    return handle


@pytest.fixture(params=["direct", "datalink"])
def transported_cluster(request):
    config = ClusterConfig(n=9, t=1, seed=5, transport=request.param)
    cluster = Cluster(config)
    client = cluster.make_client("w")
    return cluster, client


def test_termination(transported_cluster):
    cluster, client = transported_cluster
    handle = broadcast_and_wait(cluster, client, "m1")
    assert handle.done


def test_eventual_delivery_to_all_correct_servers(transported_cluster):
    cluster, client = transported_cluster
    log = DeliveryLog(cluster)
    broadcast_and_wait(cluster, client, "m1")
    cluster.run()  # drain: eventually *every* correct server delivers
    delivered = [pid for pid, items in log.deliveries.items() if "m1" in items]
    assert len(delivered) == 9


def test_synchronized_delivery(transported_cluster):
    """At least n - 2t correct servers deliver within the invocation."""
    cluster, client = transported_cluster
    log = DeliveryLog(cluster)
    handle = broadcast_and_wait(cluster, client, "m1")
    delivered_now = sum(1 for items in log.deliveries.values()
                        if "m1" in items)
    assert delivered_now >= cluster.params.n - 2 * cluster.params.t


def test_no_duplication(transported_cluster):
    cluster, client = transported_cluster
    log = DeliveryLog(cluster)
    broadcast_and_wait(cluster, client, "m1")
    cluster.run()
    for items in log.deliveries.values():
        assert items.count("m1") <= 1


def test_order_delivery(transported_cluster):
    cluster, client = transported_cluster
    log = DeliveryLog(cluster)
    for message in ("a", "b", "c"):
        broadcast_and_wait(cluster, client, message)
    cluster.run()
    for items in log.deliveries.values():
        ours = [item for item in items if item in ("a", "b", "c")]
        assert ours == ["a", "b", "c"]


def test_phases_increase(transported_cluster):
    cluster, client = transported_cluster
    first = client.transport.begin("x")
    second = client.transport.begin("y")
    assert second.phase > first.phase


def test_completion_counts_distinct_servers_only():
    config = ClusterConfig(n=9, t=1, seed=5)
    cluster = Cluster(config)
    client = cluster.make_client("w")
    handle = client.transport.begin("m")
    for _ in range(20):
        handle.confirm("s1")  # one server confirming many times
    assert not handle.completed()
    for index in range(2, 9):
        handle.confirm(f"s{index}")
    assert handle.completed()


def test_direct_transport_ignores_unrelated_messages():
    config = ClusterConfig(n=9, t=1, seed=5)
    cluster = Cluster(config)
    client = cluster.make_client("w")
    assert not client.transport.on_network_message("s1", "not-a-confirm")


def test_datalink_transport_counts_packets():
    config = ClusterConfig(n=9, t=1, seed=5, transport="datalink")
    cluster = Cluster(config)
    client = cluster.make_client("w")
    broadcast_and_wait(cluster, client, "m1", max_events=500_000)
    assert client.transport.total_packets() > 0


def test_validity_initial_link_garbage_may_deliver():
    """Garbage preloaded on a raw channel may be ss-delivered (Validity

    allows it) but must not break later real broadcasts.
    """
    config = ClusterConfig(n=9, t=1, seed=5, transport="datalink")
    cluster = Cluster(config)
    client = cluster.make_client("w")
    from repro.datalink.packets import DataPacket
    forward = client.transport.forward_links["s1"]
    forward.preload([DataPacket(0, (99, "garbage")),
                     DataPacket(1, (99, "garbage"))])
    log = DeliveryLog(cluster)
    handle = broadcast_and_wait(cluster, client, "real", max_events=500_000)
    assert handle.done
    cluster.run()
    assert all("real" in items for items in log.deliveries.values())
