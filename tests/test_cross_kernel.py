"""Old-vs-new scheduler kernel determinism, end to end.

The calendar-queue kernel replaced the seed's single binary heap as the
default simulation scheduler.  The rewrite's contract is byte-identical
execution: the same ``(time, seq)`` total order, hence the same RNG draw
sequence, the same operation history and the same ``history_digest``.
These tests pin that contract at the scenario level — one small cell per
scenario family, run under both kernels, full summaries compared.

(The scheduler-level equivalence — randomized schedule/cancel/drain soups
against the heap reference — lives in tests/test_sim_scheduler.py.)
"""

import pytest

import repro.sim.scheduler as scheduler_mod
from repro.sim.scheduler import HeapScheduler, Scheduler, build_scheduler
from repro.workloads.spec import ScenarioSpec

#: one quick cell per scenario family (mirrors the capture corpus cells).
FAMILY_CELLS = {
    "swsr": dict(seed=3, num_writes=2, num_reads=2),
    "mwmr": dict(m=2, seed=3, ops_per_process=1),
    "partition": dict(seed=3, num_writes=2, num_reads=2),
    "kv": dict(shard_count=2, num_keys=2, rounds=1, seed=3),
    "reshard": dict(shard_count=2, num_keys=2, rounds=1, seed=3, vnodes=4),
    "mobile-byz": dict(seed=3, rotations=1, num_writes=2, num_reads=2),
    "soak": dict(seed=3, num_writes=6, num_reads=6),
}


def _run_with_kernel(monkeypatch, family, params, kernel):
    monkeypatch.setattr(scheduler_mod, "DEFAULT_KERNEL", kernel)
    built = build_scheduler()
    if kernel == "heap":
        assert type(built) is HeapScheduler
    else:
        assert type(built) is Scheduler
    return ScenarioSpec(family, params).run().summarize()


@pytest.mark.parametrize("family", sorted(FAMILY_CELLS))
def test_kernels_produce_identical_summaries(family, monkeypatch):
    params = FAMILY_CELLS[family]
    calendar = _run_with_kernel(monkeypatch, family, params, "calendar")
    heap = _run_with_kernel(monkeypatch, family, params, "heap")
    assert calendar == heap
    digest = getattr(calendar, "history_digest", None)
    if digest is not None:
        assert digest == heap.history_digest


def test_kernels_agree_on_larger_swsr_cell(monkeypatch):
    """A denser cell: faults + garbage stress the fused delivery path."""
    params = dict(seed=11, n=9, t=1, num_writes=4, num_reads=4,
                  corruption_times=(2.0,), link_garbage=2,
                  byzantine_count=1)
    calendar = _run_with_kernel(monkeypatch, "swsr", params, "calendar")
    heap = _run_with_kernel(monkeypatch, "swsr", params, "heap")
    assert calendar == heap
