"""Unit tests for τ_stab measurement."""

from repro.checkers.history import History
from repro.checkers.stabilization import (find_tau_stab,
                                          stabilization_report)


def dirty_then_clean_history():
    """Arbitrary reads before the first write, correct ones after."""
    history = History()
    history.add("read", "r", "garbage1", 1.0, 2.0)
    history.add("read", "r", "garbage2", 3.0, 4.0)
    history.add("write", "w", "a", 6.0, 7.0)
    history.add("read", "r", "a", 8.0, 9.0)
    history.add("write", "w", "b", 10.0, 11.0)
    history.add("read", "r", "b", 12.0, 13.0)
    return history


def test_tau_stab_found_after_dirty_prefix():
    # With an initial value constraint the garbage reads are violations.
    tau = find_tau_stab(dirty_then_clean_history(), mode="regular",
                        initial="init")
    assert tau == 8.0  # invocation of the first clean read


def test_tau_stab_zero_for_clean_history():
    history = History()
    history.add("write", "w", "a", 0.0, 1.0)
    history.add("read", "r", "a", 2.0, 3.0)
    assert find_tau_stab(history, initial="init") == 0.0


def test_tau_stab_none_when_never_stable():
    history = History()
    history.add("write", "w", "a", 0.0, 1.0)
    history.add("read", "r", "junk", 2.0, 3.0)
    assert find_tau_stab(history, initial="init") is None


def test_tau_stab_respects_tau_no_tr_floor():
    history = History()
    history.add("write", "w", "a", 5.0, 6.0)
    history.add("read", "r", "a", 7.0, 8.0)
    tau = find_tau_stab(history, initial="init", tau_no_tr=4.0)
    assert tau == 4.0


def test_empty_reads():
    history = History()
    history.add("write", "w", "a", 0.0, 1.0)
    assert find_tau_stab(history) == 0.0


def test_report_fields():
    # The dirty reads happen *before* tau_no_tr, so the execution is stable
    # from tau_no_tr itself.
    report = stabilization_report(dirty_then_clean_history(),
                                  mode="regular", initial="init",
                                  tau_no_tr=5.0)
    assert report.stable
    assert report.tau_1w == 7.0          # first write ends at 7
    assert report.tau_stab == 5.0
    assert report.total_reads == 4
    assert report.dirty_reads == 2
    assert report.stabilization_time == 0.0


def test_report_fields_dirty_after_tau_no_tr():
    # With tau_no_tr = 0 the garbage reads count: stabilization is measured
    # at the first clean read's invocation.
    report = stabilization_report(dirty_then_clean_history(),
                                  mode="regular", initial="init",
                                  tau_no_tr=0.0)
    assert report.stable
    assert report.tau_stab == 8.0
    assert report.stabilization_time == 8.0


def test_report_atomic_mode_counts_inversions():
    history = History()
    history.add("write", "w", "v0", 0.0, 1.0)
    history.add("write", "w", "v1", 2.0, 10.0)
    history.add("read", "r", "v1", 3.0, 4.0)
    history.add("read", "r", "v0", 5.0, 6.0)   # inversion
    history.add("read", "r", "v1", 11.0, 12.0)
    regular = stabilization_report(history, mode="regular")
    atomic = stabilization_report(history, mode="atomic")
    assert regular.dirty_reads == 0       # regular semantics never violated
    assert atomic.dirty_reads == 1        # the inverted (second) read
    assert atomic.tau_stab is not None    # stabilizes once inversion passes


def test_report_unstable_history():
    history = History()
    history.add("write", "w", "a", 0.0, 1.0)
    history.add("read", "r", "junk", 2.0, 3.0)
    report = stabilization_report(history, initial="init")
    assert not report.stable
    assert report.tau_stab is None
    assert report.stabilization_time is None


def test_report_without_writes_after_tau():
    history = History()
    history.add("write", "w", "a", 0.0, 1.0)
    history.add("read", "r", "a", 2.0, 3.0)
    report = stabilization_report(history, tau_no_tr=5.0)
    assert report.tau_1w is None
