"""Whole-run determinism and concurrency stress.

Determinism is the property that makes stabilization *measurable* (exact
τ instants): identical seeds must give bit-identical executions, across
every construction and failure mix.  The stress tests drive the reader
through dense write bursts — the many-concurrent-writes regime whose
termination argument is the hardest part of Lemma 2 (the helping
mechanism).
"""

import pytest

from repro.checkers.regularity import check_regularity
from repro.registers.system import Cluster, ClusterConfig, build_swsr_regular
from repro.workloads.generators import ClientDriver, ValueStream
from repro.workloads.scenarios import run_mwmr_scenario, run_swsr_scenario


class TestDeterminism:
    @pytest.mark.parametrize("kind", ["regular", "atomic"])
    def test_identical_histories_for_identical_seeds(self, kind):
        def run():
            return run_swsr_scenario(kind=kind, n=9, t=1, seed=42,
                                     num_writes=3, num_reads=3,
                                     corruption_times=(2.0,),
                                     byzantine_count=1)

        first, second = run(), run()
        assert first.history.format() == second.history.format()
        assert first.messages_sent == second.messages_sent
        assert first.report.tau_stab == second.report.tau_stab

    def test_different_seeds_differ(self):
        first = run_swsr_scenario(seed=1, num_writes=2, num_reads=2)
        second = run_swsr_scenario(seed=2, num_writes=2, num_reads=2)
        assert first.history.format() != second.history.format()

    def test_mwmr_determinism(self):
        def run():
            return run_mwmr_scenario(m=3, seed=11, ops_per_process=1)

        first, second = run(), run()
        assert first.history.format() == second.history.format()

    def test_event_counts_reproducible(self):
        def run():
            result = run_swsr_scenario(seed=5, num_writes=2, num_reads=2,
                                       byzantine_count=1,
                                       byzantine_strategy="random-garbage")
            return result.cluster.scheduler.events_processed

        assert run() == run()


class TestConcurrentWriteBursts:
    def test_reader_survives_dense_write_burst(self):
        """Reads racing a back-to-back write stream stay live and regular

        (the helping mechanism: multiple writes concurrent with one read).
        """
        cluster = Cluster(ClusterConfig(n=9, t=1, seed=21))
        writer, reader = build_swsr_regular(cluster, initial="v_init")
        values = ValueStream()
        writer_driver = ClientDriver(cluster.scheduler, writer)
        reader_driver = ClientDriver(cluster.scheduler, reader)
        # 10 writes queued back-to-back; 3 reads dropped into the storm
        for _index in range(10):
            writer_driver.at(1.0, lambda: writer.write(values.next()))
        for time in (1.5, 2.5, 3.5):
            reader_driver.at(time, lambda: reader.read())
        cluster.scheduler.run_until(
            lambda: writer_driver.all_done and reader_driver.all_done,
            max_events=2_000_000)
        from repro.checkers.history import History
        history = History.from_handles(
            writer_driver.handles + reader_driver.handles)
        assert check_regularity(history, initial="v_init") == []

    @pytest.mark.parametrize("seed", [31, 32, 33])
    def test_burst_with_byzantine_and_randomized_delays(self, seed):
        result = run_swsr_scenario(kind="regular", n=9, t=1, seed=seed,
                                   num_writes=8, num_reads=4,
                                   op_gap=1.0, reader_offset=0.3,
                                   byzantine_count=1,
                                   byzantine_strategy="equivocate",
                                   max_events=2_000_000)
        assert result.completed
        assert check_regularity(result.history, initial="v_init") == []

    def test_atomic_reader_under_burst_never_inverts(self):
        from repro.checkers.atomicity import find_new_old_inversions
        result = run_swsr_scenario(kind="atomic", n=9, t=1, seed=34,
                                   num_writes=8, num_reads=6,
                                   op_gap=1.2, reader_offset=0.4,
                                   byzantine_count=1,
                                   byzantine_strategy="flip-flop",
                                   max_events=2_000_000)
        assert result.completed
        assert find_new_old_inversions(result.history) == []
