"""The ``summarize()`` boundary and the corruption-schedule closure fix."""

import pickle

import pytest

from repro.sim.trace import FAULT
from repro.workloads.scenarios import (ScenarioSummary, history_digest,
                                       run_mwmr_scenario, run_swsr_scenario)


class TestSummarize:
    def test_summary_matches_result(self):
        result = run_swsr_scenario(n=9, t=1, seed=3, num_writes=3,
                                   num_reads=3, corruption_times=(2.0,),
                                   byzantine_count=1)
        summary = result.summarize()
        assert summary.completed == result.completed
        assert summary.messages_sent == result.messages_sent
        assert summary.ops == len(result.history)
        assert summary.writes == len(result.history.writes())
        assert summary.reads == len(result.history.reads())
        assert summary.stable == result.report.stable
        assert summary.tau_stab == result.report.tau_stab
        assert summary.corruptions == result.extra["injector"].corruptions
        assert summary.corruptions > 0
        assert summary.history_digest == history_digest(result.history)

    def test_summary_is_picklable_and_compact(self):
        summary = run_swsr_scenario(seed=1, num_writes=2,
                                    num_reads=2).summarize()
        blob = pickle.dumps(summary)
        assert pickle.loads(blob) == summary
        # the whole point of the boundary: orders of magnitude smaller
        # than pickling a cluster-dragging ScenarioResult would be.
        assert len(blob) < 2000

    def test_mwmr_summary_has_no_stabilization_report(self):
        summary = run_mwmr_scenario(m=2, seed=1,
                                    ops_per_process=1).summarize()
        assert summary.completed
        assert summary.stable is None
        assert summary.tau_stab is None

    def test_to_dict_is_json_ready(self):
        import json
        summary = run_swsr_scenario(seed=1, num_writes=2,
                                    num_reads=2).summarize()
        data = summary.to_dict()
        assert json.loads(json.dumps(data)) == data

    def test_digest_deterministic_across_runs(self):
        run = lambda: run_swsr_scenario(seed=7, num_writes=2, num_reads=2)
        assert run().summarize() == run().summarize()

    def test_figure1_summary_contract(self):
        from repro.experiments.figure1 import run_figure1
        summary = run_figure1("regular").summarize()
        assert summary["inverted"]
        assert pickle.loads(pickle.dumps(summary)) == summary


class TestCorruptionSchedules:
    """Regression tests for the late-binding closure hazard: each burst in
    ``corruption_times`` must fire at its own time with its own fraction
    (pre-fix, a naive ``lambda:`` would have every burst share state)."""

    def test_two_bursts_both_fire_at_their_times(self):
        result = run_swsr_scenario(
            n=9, t=1, seed=5, num_writes=3, num_reads=3,
            corruption_times=(2.0, 5.0), record_trace=True)
        fault_times = sorted({event.time for event
                              in result.cluster.trace.of_kind(FAULT)})
        assert fault_times == [2.0, 5.0]

    def test_per_burst_fractions_are_bound_not_shared(self):
        """Bursts (2.0, 5.0) with fractions (1.0, 0.0): the late-binding
        bug would apply the *last* fraction (0.0) to both bursts and
        corrupt nothing; correctly bound, t=2.0 corrupts everything and
        t=5.0 nothing."""
        result = run_swsr_scenario(
            n=9, t=1, seed=5, num_writes=3, num_reads=3,
            corruption_times=(2.0, 5.0), corruption_fraction=(1.0, 0.0),
            record_trace=True)
        events = list(result.cluster.trace.of_kind(FAULT))
        assert events, "first burst must corrupt state"
        assert {event.time for event in events} == {2.0}

    def test_per_burst_fractions_reversed(self):
        result = run_swsr_scenario(
            n=9, t=1, seed=5, num_writes=3, num_reads=3,
            corruption_times=(2.0, 5.0), corruption_fraction=(0.0, 1.0),
            record_trace=True)
        assert {event.time for event
                in result.cluster.trace.of_kind(FAULT)} == {5.0}

    def test_fraction_sequence_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="corruption_fraction"):
            run_swsr_scenario(corruption_times=(2.0, 5.0),
                              corruption_fraction=(1.0,))

    def test_mwmr_accepts_per_burst_fractions(self):
        result = run_mwmr_scenario(
            m=2, seed=3, ops_per_process=1,
            corruption_times=(2.0, 4.0), corruption_fraction=(0.5, 0.0))
        assert result.completed

    def test_scalar_fraction_still_broadcasts(self):
        result = run_swsr_scenario(
            n=9, t=1, seed=5, num_writes=3, num_reads=3,
            corruption_times=(2.0, 5.0), corruption_fraction=1.0,
            record_trace=True)
        assert {event.time for event
                in result.cluster.trace.of_kind(FAULT)} == {2.0, 5.0}
