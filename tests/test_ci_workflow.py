"""The CI pipeline definition must stay parseable and keep its gates."""

import os

import pytest

yaml = pytest.importorskip("yaml")

WORKFLOW = os.path.join(os.path.dirname(__file__), os.pardir,
                        ".github", "workflows", "ci.yml")


@pytest.fixture(scope="module")
def workflow():
    with open(WORKFLOW, "r", encoding="utf-8") as handle:
        return yaml.safe_load(handle)


def test_workflow_parses_and_has_jobs(workflow):
    assert set(workflow["jobs"]) == {"lint", "test", "perf-smoke",
                                     "parallel-sim", "fuzz-smoke",
                                     "service-smoke", "reshard-smoke",
                                     "capture-smoke", "docs"}
    # "on" parses as YAML true; accept either spelling
    assert True in workflow or "on" in workflow


def test_matrix_covers_supported_pythons(workflow):
    matrix = workflow["jobs"]["test"]["strategy"]["matrix"]
    assert matrix["python-version"] == ["3.10", "3.11", "3.12"]


def test_pipeline_runs_tests_smoke_sweep_and_uploads(workflow):
    steps = workflow["jobs"]["test"]["steps"]
    runs = " ".join(step.get("run", "") for step in steps)
    assert "python -m pytest" in runs
    assert "python -m repro.runner --smoke" in runs
    assert "--strict" in runs
    uploads = [step for step in steps
               if "upload-artifact" in step.get("uses", "")]
    assert uploads, "artifact upload step missing"
    assert "results.json" in uploads[0]["with"]["path"]
    assert "benchmarks/results.txt" in uploads[0]["with"]["path"]


def test_determinism_guard_compares_worker_counts(workflow):
    steps = workflow["jobs"]["test"]["steps"]
    guard = " ".join(step.get("run", "") for step in steps)
    assert "--workers 1" in guard and "--workers 4" in guard
    assert "cmp" in guard


def test_perf_smoke_job_gates_and_uploads_simcore_bench(workflow):
    steps = workflow["jobs"]["perf-smoke"]["steps"]
    runs = " ".join(step.get("run", "") for step in steps)
    assert "benchmarks/test_bench_perf_scaling.py" in runs
    assert "benchmarks/test_bench_kv.py" in runs
    uploads = [step for step in steps
               if "upload-artifact" in step.get("uses", "")]
    assert uploads, "BENCH_simcore.json upload step missing"
    assert "BENCH_simcore.json" in uploads[0]["with"]["path"]
    assert "BENCH_kv.json" in uploads[0]["with"]["path"]


def test_perf_smoke_job_arms_absolute_throughput_floors(workflow):
    """The kernel-rewrite floors must stay pinned in the perf-smoke job."""
    steps = workflow["jobs"]["perf-smoke"]["steps"]
    envs = [step.get("env", {}) for step in steps
            if "test_bench_perf_scaling" in step.get("run", "")]
    assert envs and envs[0].get("REPRO_PERF_GATE") == "1"
    assert int(envs[0]["REPRO_STORM_FLOOR"]) >= 660_000
    assert int(envs[0]["REPRO_SCENARIO_FLOOR"]) >= 230_000


def test_perf_smoke_job_smokes_the_profiler_on_both_kernels(workflow):
    steps = workflow["jobs"]["perf-smoke"]["steps"]
    runs = " ".join(step.get("run", "") for step in steps)
    assert "repro-profile --family" in runs
    assert "--kernel heap" in runs
    uploads = [step for step in steps
               if "upload-artifact" in step.get("uses", "")]
    assert "profile-calendar.json" in uploads[0]["with"]["path"]
    assert "profile-heap.json" in uploads[0]["with"]["path"]


def test_perf_smoke_job_gates_streaming_checkers(workflow):
    steps = workflow["jobs"]["perf-smoke"]["steps"]
    runs = " ".join(step.get("run", "") for step in steps)
    assert "benchmarks/test_bench_checkers.py" in runs
    uploads = [step for step in steps
               if "upload-artifact" in step.get("uses", "")]
    assert "BENCH_checkers.json" in uploads[0]["with"]["path"]


def test_parallel_sim_job_gates_speedup_and_digest_equality(workflow):
    steps = workflow["jobs"]["parallel-sim"]["steps"]
    runs = " ".join(step.get("run", "") for step in steps)
    # the bench runs with the wall-clock speedup gate armed ...
    assert "benchmarks/test_bench_parallel_sim.py" in runs
    gate_envs = [step.get("env", {}).get("REPRO_PERF_GATE")
                 for step in steps
                 if "test_bench_parallel_sim" in step.get("run", "")]
    assert gate_envs == ["1"]
    # ... the 1-vs-4-worker digest-equality guard compares summaries ...
    assert "parallel=1" in runs and "parallel=4" in runs
    assert "history_digest" in runs
    # ... and the bench artifact is archived (also on failure).
    uploads = [step for step in steps
               if "upload-artifact" in step.get("uses", "")]
    assert uploads, "parallel-sim bench upload step missing"
    assert uploads[0]["if"] == "always()"
    assert "BENCH_parallel_sim.json" in uploads[0]["with"]["path"]


def test_fuzz_smoke_job_gates_guards_and_uploads(workflow):
    steps = workflow["jobs"]["fuzz-smoke"]["steps"]
    runs = " ".join(step.get("run", "") for step in steps)
    # strict fixed-seed budget (exit is non-zero on any violation) ...
    assert "python -m repro.fuzz --smoke" in runs
    # ... with a 1-vs-4-worker byte-identical determinism guard ...
    assert "--workers 4" in runs and "--workers 1" in runs
    assert "cmp" in runs
    # ... the committed replay corpus re-executed ...
    assert "tests/replays/wsn-jump-atomic.json" in runs
    assert "REPRO_FUZZ_INJECT=burst" in runs
    # ... and shrunk-replay artifacts uploaded (also on failure).
    uploads = [step for step in steps
               if "upload-artifact" in step.get("uses", "")]
    assert uploads, "fuzz artifact upload step missing"
    assert uploads[0]["if"] == "always()"
    assert "fuzz-artifacts/" in uploads[0]["with"]["path"]
    assert "fuzz-results.json" in uploads[0]["with"]["path"]


def test_fuzz_smoke_job_covers_the_kv_family(workflow):
    runs = " ".join(step.get("run", "")
                    for step in workflow["jobs"]["fuzz-smoke"]["steps"])
    assert "--family kv" in runs
    assert "fuzz-kv-results.json" in runs


def test_reshard_smoke_job_gates_sweep_fuzz_and_uploads(workflow):
    steps = workflow["jobs"]["reshard-smoke"]["steps"]
    runs = " ".join(step.get("run", "") for step in steps)
    # the strict reshard sweep with its 1-vs-4-worker byte-identity
    # guard ...
    assert "reshard" in runs
    assert "run_sweep" in runs
    assert "workers" in runs and "cmp" in runs
    # ... the reshard fuzz arm with its own determinism guard ...
    assert "--family reshard" in runs
    assert "reshard-fuzz.json" in runs
    # ... and results + shrunk replays uploaded (also on failure).
    uploads = [step for step in steps
               if "upload-artifact" in step.get("uses", "")]
    assert uploads, "reshard artifact upload step missing"
    assert uploads[0]["if"] == "always()"
    assert "reshard-results.json" in uploads[0]["with"]["path"]
    assert "reshard-fuzz-artifacts/" in uploads[0]["with"]["path"]


def test_service_smoke_job_gates_load_and_digests(workflow):
    steps = workflow["jobs"]["service-smoke"]["steps"]
    runs = " ".join(step.get("run", "") for step in steps)
    # the loopback load bench runs with the wall-clock gate armed ...
    assert "benchmarks/test_bench_service.py" in runs
    gate_envs = [step.get("env", {}).get("REPRO_PERF_GATE")
                 for step in steps if "test_bench_service" in
                 step.get("run", "")]
    assert gate_envs == ["1"]
    # ... the CLI digest guard compares 1 vs 8 connections ...
    assert "--clients 1" in runs and "--clients 8" in runs
    assert "response_digest" in runs
    # ... and BENCH_service.json is archived (also on failure).
    uploads = [step for step in steps
               if "upload-artifact" in step.get("uses", "")]
    assert uploads, "service bench upload step missing"
    assert uploads[0]["if"] == "always()"
    assert "BENCH_service.json" in uploads[0]["with"]["path"]


def test_capture_smoke_job_gates_replay_modes_and_uploads(workflow):
    steps = workflow["jobs"]["capture-smoke"]["steps"]
    runs = " ".join(step.get("run", "") for step in steps)
    # a trace is recorded through the CLI and replayed in both modes ...
    assert "repro-capture record" in runs
    assert "--mode resimulate" in runs and "--mode recheck" in runs
    # ... re-recording the same spec is byte-identical ...
    assert "cmp kv-trace.jsonl kv-trace-again.jsonl" in runs
    # ... the 1-vs-4-worker replay reports are byte-identical ...
    assert "--workers 1" in runs and "--workers 4" in runs
    assert "cmp replay-1.json replay-4.json" in runs
    # ... the committed golden corpus stays checkable and replayable ...
    assert "tests/captures" in runs
    assert "tests/captures/service.jsonl" in runs
    # ... and a clean soak's metrics never trip the alert hook.
    assert "repro-capture tail" in runs
    assert "! grep -q '\"alert\": true'" in runs
    # traces + reports are archived (also on failure).
    uploads = [step for step in steps
               if "upload-artifact" in step.get("uses", "")]
    assert uploads, "capture-smoke artifact upload step missing"
    assert uploads[0]["if"] == "always()"
    assert "kv-trace.jsonl" in uploads[0]["with"]["path"]
    assert "soak-metrics.jsonl" in uploads[0]["with"]["path"]


def test_docs_job_covers_the_new_surfaces(workflow):
    runs = " ".join(step.get("run", "")
                    for step in workflow["jobs"]["docs"]["steps"])
    assert "src/repro/service" in runs
    assert "src/repro/capture" in runs
    assert "src/repro/api.py" in runs
    assert "src/repro/workloads/spec.py" in runs


def test_docs_job_runs_the_doctest_surface(workflow):
    runs = " ".join(step.get("run", "")
                    for step in workflow["jobs"]["docs"]["steps"])
    assert "--doctest-modules" in runs
    assert "src/repro/kvstore" in runs
    assert "docs/ARCHITECTURE.md" in runs


def test_lint_job_uses_ruff(workflow):
    runs = " ".join(step.get("run", "")
                    for step in workflow["jobs"]["lint"]["steps"])
    assert "ruff check" in runs
