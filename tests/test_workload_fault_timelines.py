"""The FaultTimeline scenario families: determinism, drops, rotation."""

import pytest

from repro.faults.schedule import FaultTimeline, TimelineEvent
from repro.runner.engine import run_sweep
from repro.runner.spec import SweepSpec
from repro.workloads.scenarios import (run_mobile_byzantine_scenario,
                                       run_partition_scenario,
                                       run_swsr_scenario)


class TestPartitionScenario:
    def test_same_seed_same_summary(self):
        first = run_partition_scenario(seed=11).summarize()
        second = run_partition_scenario(seed=11).summarize()
        assert first == second

    def test_different_seeds_diverge(self):
        first = run_partition_scenario(seed=11).summarize()
        second = run_partition_scenario(seed=12).summarize()
        assert first.history_digest != second.history_digest

    def test_partition_drops_messages_and_still_stabilizes(self):
        result = run_partition_scenario(seed=3)
        assert result.completed
        assert result.report is not None and result.report.stable
        assert result.cluster.network.messages_dropped > 0
        # the healed network stops dropping: totals are consistent
        network = result.cluster.network
        assert network.messages_delivered <= network.messages_sent

    def test_partitioning_more_than_t_servers_can_starve(self):
        # 2 of 9 servers unreachable with t=1: the n-t ack quorum cannot
        # form while the partition lasts; with a long enough partition the
        # run must exhaust its budget rather than terminate.
        result = run_partition_scenario(seed=3, partition_count=2,
                                        partition_duration=1_000.0,
                                        max_events=100_000)
        assert not result.completed

    def test_atomic_kind_supported(self):
        result = run_partition_scenario(kind="atomic", seed=4)
        assert result.completed
        assert result.report is not None and result.report.stable

    def test_rejects_datalink_transport(self):
        with pytest.raises(ValueError):
            run_partition_scenario(transport="datalink")


class TestMobileByzantineScenario:
    def test_same_seed_same_summary(self):
        first = run_mobile_byzantine_scenario(seed=21).summarize()
        second = run_mobile_byzantine_scenario(seed=21).summarize()
        assert first == second

    def test_rotation_moves_the_byzantine_set(self):
        result = run_mobile_byzantine_scenario(seed=2, rotations=3)
        assert result.completed
        # after 3 rotations of size t=1 the set sits on the 3rd server
        assert result.cluster.byzantine_ids == ["s3"]
        # recovering servers re-join with corrupted state
        assert result.extra["injector"].corruptions > 0

    def test_rotation_respects_t_bound(self):
        with pytest.raises(ValueError):
            run_mobile_byzantine_scenario(seed=0, rotation_size=2)  # t=1

    def test_stabilizes_after_last_rotation(self):
        result = run_mobile_byzantine_scenario(seed=5, rotations=2)
        assert result.completed
        assert result.report is not None and result.report.stable
        assert result.tau_no_tr >= 1.0  # last rotation instant


class TestHandoverStarvation:
    """PR 2's documented liveness edge, pinned as a regression.

    With ``rotation_gap=10.5`` and ``op_gap=10`` the second rotation
    fires at t=11.5 — strictly inside the broadcast of write #1 (sent
    t=11.0, deliveries spread over [11.1, 13.0]).  Under a
    *non-responsive* rotation strategy the old member can drop its copy
    before the handover and the new member after it: two mute servers
    against an ``n - t`` wait sized for one, so the operation legally
    starves.  Responsive-liar rotations with the *same* timing keep
    every broadcast answered and must complete and stabilize — which is
    why the strict sweeps (and the fuzzer's generator envelope) rotate
    responsive strategies only.
    """

    STRADDLE = dict(seed=0, rotations=3, rotation_gap=10.5,
                    num_writes=4, num_reads=4, max_events=300_000)

    def test_silent_rotation_straddling_a_broadcast_starves(self):
        result = run_mobile_byzantine_scenario(
            rotation_strategy="silent", **self.STRADDLE)
        assert not result.completed  # the documented starvation
        # starvation is budget exhaustion, not a crash: the history holds
        # the operations that did finish, and no report is produced
        assert result.report is None

    @pytest.mark.parametrize("strategy", ["random-garbage", "stale"])
    def test_responsive_rotation_same_timing_completes(self, strategy):
        result = run_mobile_byzantine_scenario(
            rotation_strategy=strategy, **self.STRADDLE)
        assert result.completed
        assert result.report is not None and result.report.stable

    def test_starvation_is_deterministic(self):
        first = run_mobile_byzantine_scenario(
            rotation_strategy="silent", **self.STRADDLE).summarize()
        second = run_mobile_byzantine_scenario(
            rotation_strategy="silent", **self.STRADDLE).summarize()
        assert first == second
        assert not first.completed


class TestTimelineSerialization:
    def test_round_trip(self):
        timeline = (FaultTimeline()
                    .burst(2.0, fraction=0.5, targets="servers")
                    .partition(10.0, 20.0, ["s1"])
                    .crash_recovery(5.0, 8.0, ["s2"])
                    .byzantine(12.0, ["s3"], "stale")
                    .link_garbage(2.0, per_link=2))
        restored = FaultTimeline.from_dict(timeline.to_dict())
        assert restored == timeline
        assert restored.tau_no_tr == timeline.tau_no_tr

    def test_tau_excludes_byzantine_rotation(self):
        timeline = (FaultTimeline()
                    .burst(2.0)
                    .byzantine(50.0, ["s1"]))
        assert timeline.tau_no_tr == 2.0
        assert timeline.last_event_time == 50.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            TimelineEvent(1.0, "meteor-strike")
        with pytest.raises(ValueError):
            FaultTimeline().partition(5.0, 5.0, ["s1"])  # must heal later

    def test_rejected_timeline_installs_nothing(self):
        # validation happens before scheduling: a timeline whose later
        # event is invalid must not leave earlier events on the scheduler.
        from repro.faults.transient import TransientFaultInjector
        from repro.registers.system import (Cluster, ClusterConfig,
                                            build_swsr_regular)
        cluster = Cluster(ClusterConfig(n=9, t=1, seed=0))
        build_swsr_regular(cluster, initial="v")
        injector = TransientFaultInjector.for_cluster(cluster)
        timeline = (FaultTimeline()
                    .burst(2.0)
                    .byzantine(5.0, ["s1", "s2"]))  # exceeds t=1
        before = cluster.scheduler.pending_count()
        with pytest.raises(ValueError):
            timeline.install(cluster, injector)
        assert cluster.scheduler.pending_count() == before

    def test_partitioning_unknown_pid_is_loud(self):
        from repro.sim.errors import UnknownProcessError
        from repro.registers.system import Cluster, ClusterConfig
        cluster = Cluster(ClusterConfig(n=9, t=1, seed=0))
        with pytest.raises(UnknownProcessError):
            cluster.network.set_partition(["s99"])

    def test_byzantine_rotation_leaves_crashed_servers_alone(self):
        # regression: a rotation during a crash window must not revive
        # the crashed server early — only its `recover` event may.
        from repro.faults.transient import TransientFaultInjector
        from repro.registers.system import (Cluster, ClusterConfig,
                                            build_swsr_regular)
        cluster = Cluster(ClusterConfig(n=9, t=1, seed=0))
        build_swsr_regular(cluster, initial="v")
        injector = TransientFaultInjector.for_cluster(cluster)
        timeline = (FaultTimeline()
                    .crash_recovery(4.0, 9.0, ["s5"])
                    .byzantine(6.0, ["s1"]))
        timeline.install(cluster, injector)
        cluster.run(until=7.0)
        assert sorted(cluster.byzantine_ids) == ["s1", "s5"]  # still down
        cluster.run(until=10.0)
        assert cluster.byzantine_ids == ["s1"]  # recover event revived s5
        assert injector.corruptions > 0  # with arbitrary state

    def test_swsr_scenario_accepts_timeline_dict(self):
        timeline = FaultTimeline().burst(3.0, fraction=0.5)
        result = run_swsr_scenario(seed=9, num_writes=2, num_reads=2,
                                   fault_timeline=timeline.to_dict())
        assert result.completed
        # the timeline's burst pushed tau (and hence the workload) out
        assert result.tau_no_tr == 3.0
        assert result.extra["injector"].corruptions > 0


class TestSweepIntegration:
    def test_new_families_run_through_the_runner(self):
        specs = [
            SweepSpec(name="tl-partition", scenario="partition",
                      base={"n": 9, "t": 1, "num_writes": 4,
                            "num_reads": 4},
                      grid={"kind": ["regular", "atomic"]}, seeds=[0]),
            SweepSpec(name="tl-mobile", scenario="mobile-byz",
                      base={"n": 9, "t": 1, "num_writes": 6,
                            "num_reads": 6, "rotations": 2},
                      grid={"rotation_strategy": ["random-garbage",
                                                  "stale"]},
                      seeds=[0]),
        ]
        sweep = run_sweep(specs, workers=1)
        assert len(sweep.cells) == 4
        assert sweep.all_ok
        partition_cells = [cell for cell in sweep.cells
                           if cell.scenario == "partition"]
        assert all("messages_dropped" in cell.counters
                   for cell in partition_cells)

    def test_sweep_output_identical_across_worker_counts(self):
        spec = SweepSpec(name="tl-det", scenario="mobile-byz",
                         base={"n": 9, "t": 1, "num_writes": 4,
                               "num_reads": 4, "rotations": 2},
                         grid={"kind": ["regular", "atomic"]},
                         seeds=[0, 1])
        serial = run_sweep(spec, workers=1).to_json()
        parallel = run_sweep(spec, workers=2).to_json()
        assert serial == parallel
