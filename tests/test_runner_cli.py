"""CLI behaviour of ``python -m repro.runner`` / ``repro-sweep``."""

import json

import pytest

from repro.runner import SweepSpec
from repro.runner.cli import main


@pytest.fixture
def spec_file(tmp_path):
    spec = SweepSpec(
        name="cli", scenario="swsr",
        base={"n": 9, "t": 1, "num_writes": 2, "num_reads": 2},
        grid={"kind": ["regular", "atomic"]},
        seeds=[0])
    path = tmp_path / "spec.json"
    path.write_text(spec.to_json(), encoding="utf-8")
    return str(path)


def test_runs_a_spec_and_writes_canonical_json(spec_file, tmp_path, capsys):
    out = tmp_path / "results.json"
    assert main(["--spec", spec_file, "--out", str(out),
                 "--workers", "1"]) == 0
    document = json.loads(out.read_text(encoding="utf-8"))
    assert {"specs", "cells", "aggregate"} <= set(document)
    assert len(document["cells"]) == 2
    ids = [cell["cell_id"] for cell in document["cells"]]
    assert ids == sorted(ids)
    assert "2 cells, 2 ok" in capsys.readouterr().out


def test_output_is_byte_identical_across_worker_counts(spec_file, tmp_path):
    serial, parallel = tmp_path / "serial.json", tmp_path / "parallel.json"
    assert main(["--spec", spec_file, "--out", str(serial),
                 "--workers", "1", "--quiet"]) == 0
    assert main(["--spec", spec_file, "--out", str(parallel),
                 "--workers", "4", "--quiet"]) == 0
    assert serial.read_bytes() == parallel.read_bytes()


def test_dry_run_lists_cells_without_running(spec_file, capsys):
    assert main(["--spec", spec_file, "--dry-run"]) == 0
    out = capsys.readouterr().out
    assert "cli/swsr/0000" in out
    assert "2 cells" in out


def test_smoke_dry_run_has_at_least_24_cells(capsys):
    assert main(["--smoke", "--dry-run", "--quiet"]) == 0
    lines = [line for line in capsys.readouterr().out.splitlines()
             if "/" in line]
    assert len(lines) >= 24


def test_table_rendering(spec_file, capsys):
    assert main(["--spec", spec_file, "--table", "--workers", "1"]) == 0
    out = capsys.readouterr().out
    assert "sweep [swsr]" in out
    assert "HOLDS" in out


def test_no_input_is_an_error(capsys):
    assert main([]) == 2
    assert "nothing to run" in capsys.readouterr().err


def test_strict_fails_on_not_ok_cells(tmp_path, capsys):
    spec = SweepSpec(
        name="starved", scenario="swsr",
        base={"n": 9, "t": 1, "num_writes": 1, "num_reads": 1,
              "max_events": 50},
        grid={"kind": ["regular"]}, seeds=[0])
    path = tmp_path / "spec.json"
    path.write_text(spec.to_json(), encoding="utf-8")
    assert main(["--spec", str(path), "--workers", "1"]) == 0
    assert main(["--spec", str(path), "--workers", "1", "--strict"]) == 1
    assert "NOT OK (incomplete)" in capsys.readouterr().out


def test_error_cells_fail_even_without_strict(tmp_path):
    spec = SweepSpec(name="bad", scenario="swsr", base={"n": 9, "t": 3},
                     grid={"kind": ["regular"]}, seeds=[0])
    path = tmp_path / "spec.json"
    path.write_text(spec.to_json(), encoding="utf-8")
    assert main(["--spec", str(path), "--workers", "1", "--quiet"]) == 1


def test_max_cells_truncation(spec_file, capsys):
    assert main(["--spec", spec_file, "--dry-run", "--max-cells", "1"]) == 0
    out = capsys.readouterr().out
    assert "1 cells" in out
