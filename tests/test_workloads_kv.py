"""Tests of the ``kv`` scenario family: scenario, adapter, smoke spec."""

import pickle

import pytest

from repro.faults.schedule import FaultTimeline
from repro.runner.adapters import ADAPTERS
from repro.runner.spec import SCENARIOS, expand, smoke_specs
from repro.workloads.scenarios import run_kv_scenario


class TestRunKVScenario:
    def test_clean_run_completes_and_linearizes(self):
        result = run_kv_scenario(shard_count=2, num_keys=3, rounds=2,
                                 seed=0)
        assert result.completed
        assert result.linearizable
        assert set(result.per_key_linearizable) == {"k0", "k1", "k2"}
        # 3 creates + 2 rounds x (3 puts + 3 gets)
        assert len(result.history) == 15

    def test_deterministic_summary(self):
        kwargs = dict(shard_count=2, num_keys=4, rounds=2, seed=7,
                      corruption_times=[2.0], byzantine_count=1)
        assert run_kv_scenario(**kwargs).summarize() == \
            run_kv_scenario(**kwargs).summarize()

    def test_serial_and_pipelined_agree_on_verdicts(self):
        # dense enough that both clients share shards — the regime where
        # pipelining buys simulated-time concurrency
        kwargs = dict(shard_count=2, num_keys=8, rounds=2, seed=3)
        serial = run_kv_scenario(pipelined=False, **kwargs)
        pipelined = run_kv_scenario(pipelined=True, **kwargs)
        assert serial.completed and pipelined.completed
        assert serial.linearizable and pipelined.linearizable
        assert len(serial.history) == len(pipelined.history)
        assert pipelined.store.now < serial.store.now

    def test_burst_and_byzantine_envelope_stabilizes(self):
        result = run_kv_scenario(shard_count=2, num_keys=4, rounds=2,
                                 seed=5, corruption_times=[2.0],
                                 corruption_fraction=0.2,
                                 byzantine_count=1)
        assert result.completed
        assert result.linearizable
        assert result.summarize().corruptions > 0
        assert result.tau_no_tr > 0

    def test_per_shard_timelines_only_hit_their_shard(self):
        timeline = FaultTimeline().burst(1.0, fraction=0.2,
                                         targets="servers")
        result = run_kv_scenario(shard_count=2, num_keys=4, rounds=1,
                                 seed=6,
                                 fault_timelines={1: timeline.to_dict()})
        assert result.completed and result.linearizable
        assert result.tau_by_shard[1] > result.tau_by_shard[0]

    def test_out_of_range_timeline_shard_rejected(self):
        """A typo'd shard index must error loudly, not silently report a
        fault-free 'survived faults' verdict."""
        timeline = FaultTimeline().burst(1.0, fraction=0.2,
                                         targets="servers")
        with pytest.raises(ValueError, match="reference shards"):
            run_kv_scenario(shard_count=2, num_keys=2, rounds=1, seed=6,
                            fault_timelines={5: timeline.to_dict()})

    def test_keys_judged_against_their_own_shard_tau(self):
        """Shards are independent simulations with different anchors; a
        key must not be judged against another shard's (later) τ."""
        result = run_kv_scenario(shard_count=2, num_keys=4, rounds=2,
                                 seed=7, corruption_times=[2.0])
        assert result.completed
        assert result.linearizable
        assert len(set(result.tau_by_shard)) > 1


class TestKVAdapter:
    def test_registered_and_sections_picklable(self):
        assert "kv" in SCENARIOS
        verdicts, counters, timings, digest = ADAPTERS["kv"](
            dict(shard_count=2, num_keys=3, rounds=1, seed=1))
        assert verdicts["completed"] and verdicts["linearizable"] \
            and verdicts["ok"]
        assert counters["shards"] == 2
        assert counters["keys"] == 3
        assert counters["ops"] == 9
        assert timings["sim_end"] > 0
        assert len(digest) == 16
        pickle.dumps((verdicts, counters, timings, digest))

    def test_smoke_sweep_includes_kv_cells(self):
        cells = expand(smoke_specs())
        kv_cells = [cell for cell in cells if cell.scenario == "kv"]
        assert len(kv_cells) == 24
        shard_counts = {cell.params["shard_count"] for cell in kv_cells}
        assert shard_counts == {1, 2, 4}
        assert all("seed" in cell.params for cell in kv_cells)
