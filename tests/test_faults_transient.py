"""Unit tests for the transient-failure injector."""

import pytest

from repro.faults.transient import (TransientFaultInjector, garbage_message,
                                    garbage_value)
from repro.registers.system import Cluster, ClusterConfig, build_swsr_regular
from repro.sim.random_source import RandomSource
from repro.sim.trace import FAULT


def make_cluster(seed=0):
    cluster = Cluster(ClusterConfig(n=9, t=1, seed=seed))
    writer, reader = build_swsr_regular(cluster, initial="v_init")
    injector = TransientFaultInjector.for_cluster(cluster)
    return cluster, writer, reader, injector


def test_corrupt_var_changes_value():
    cluster, writer, reader, injector = make_cluster()
    server = cluster.servers[0]
    before = server.automatons["reg"].last_val
    injector.corrupt_var(server, "reg.last_val")
    assert server.automatons["reg"].last_val != before


def test_corrupt_process_touches_all_registered_vars():
    cluster, writer, reader, injector = make_cluster()
    server = cluster.servers[0]
    touched = injector.corrupt_process(server)
    assert set(touched) == {"reg.last_val", "reg.helping_val"}


def test_corrupt_process_with_prefix_filter():
    cluster, writer, reader, injector = make_cluster()
    server = cluster.servers[0]
    touched = injector.corrupt_process(server, prefix="reg.last")
    assert touched == ["reg.last_val"]


def test_corrupt_fraction_zero_is_noop():
    cluster, writer, reader, injector = make_cluster()
    server = cluster.servers[0]
    before = server.automatons["reg"].last_val
    touched = injector.corrupt_process(server, fraction=0.0)
    assert touched == []
    assert server.automatons["reg"].last_val == before


def test_corrupt_all_counts():
    cluster, writer, reader, injector = make_cluster()
    count = injector.corrupt_all(cluster.servers)
    assert count == 9 * 2


def test_corruption_traced():
    cluster, writer, reader, injector = make_cluster()
    injector.corrupt_process(cluster.servers[0])
    assert cluster.trace.count(FAULT) == 2


def test_corruption_is_deterministic_per_seed():
    def corrupted_value(seed):
        cluster, writer, reader, injector = make_cluster(seed)
        injector.corrupt_process(cluster.servers[0])
        return cluster.servers[0].automatons["reg"].last_val

    assert corrupted_value(5) == corrupted_value(5)


def test_preload_link_garbage_schedules_messages():
    cluster, writer, reader, injector = make_cluster()
    before = cluster.scheduler.pending_count()
    injector.preload_link_garbage("w", "s1", count=3)
    assert cluster.scheduler.pending_count() == before + 3


def test_garbage_everywhere_covers_all_links():
    cluster, writer, reader, injector = make_cluster()
    injector.garbage_everywhere(["w", "r"], cluster.server_ids, per_link=1)
    # 2 clients x 9 servers x 2 directions = 36 messages
    assert cluster.scheduler.pending_count() >= 36


def test_burst_schedules_future_corruption():
    cluster, writer, reader, injector = make_cluster()
    injector.burst([1.0, 2.0], cluster.servers)
    cluster.run(until=3.0)
    assert injector.corruptions > 0


def test_garbage_value_and_message_are_deterministic():
    a = RandomSource(1).stream("g")
    b = RandomSource(1).stream("g")
    assert garbage_value(a) == garbage_value(b)
    assert garbage_message(a) == garbage_message(b)


def test_injector_without_network_rejects_link_ops():
    cluster, writer, reader, injector = make_cluster()
    bare = TransientFaultInjector(RandomSource(0).stream("x"),
                                  cluster.trace, cluster.scheduler)
    with pytest.raises(ValueError):
        bare.preload_link_garbage("w", "s1")
