"""Unit tests for inversion detection and the linearizability search."""

import pytest

from repro.checkers.atomicity import (check_atomic_swsr, check_linearizable,
                                      find_new_old_inversions, is_atomic_swsr)
from repro.checkers.history import History


def figure1_history():
    """The exact scenario of the paper's Figure 1."""
    history = History()
    history.add("write", "w", "v0", 0.0, 1.0)
    history.add("write", "w", "v1", 2.0, 10.0)   # long-running write
    history.add("read", "r", "v1", 3.0, 4.0)     # returns the new value
    history.add("read", "r", "v0", 5.0, 6.0)     # then the old one
    return history


class TestInversionDetection:
    def test_figure1_inversion_detected(self):
        inversions = find_new_old_inversions(figure1_history())
        assert len(inversions) == 1
        inversion = inversions[0]
        assert inversion.first.value == "v1"
        assert inversion.second.value == "v0"
        assert inversion.first_write_index == 1
        assert inversion.second_write_index == 0

    def test_monotone_reads_clean(self):
        history = History()
        history.add("write", "w", "a", 0.0, 1.0)
        history.add("write", "w", "b", 2.0, 3.0)
        history.add("read", "r", "a", 0.5, 1.5)
        history.add("read", "r", "b", 4.0, 5.0)
        assert find_new_old_inversions(history) == []

    def test_same_value_twice_not_inversion(self):
        history = History()
        history.add("write", "w", "a", 0.0, 1.0)
        history.add("read", "r", "a", 2.0, 3.0)
        history.add("read", "r", "a", 4.0, 5.0)
        assert find_new_old_inversions(history) == []

    def test_concurrent_reads_not_ordered(self):
        """Only *sequential* read pairs can exhibit an inversion."""
        history = History()
        history.add("write", "w", "v0", 0.0, 1.0)
        history.add("write", "w", "v1", 2.0, 10.0)
        history.add("read", "r1", "v1", 3.0, 6.0)
        history.add("read", "r2", "v0", 4.0, 7.0)  # overlaps the first read
        assert find_new_old_inversions(history) == []

    def test_unmapped_reads_skipped(self):
        history = History()
        history.add("write", "w", "a", 0.0, 1.0)
        history.add("read", "r", "garbage", 2.0, 3.0)
        history.add("read", "r", "a", 4.0, 5.0)
        assert find_new_old_inversions(history) == []

    def test_after_cutoff(self):
        history = figure1_history()
        assert find_new_old_inversions(history, after=4.5) == []

    def test_multi_writer_rejected(self):
        history = History()
        history.add("write", "p1", "a", 0.0, 1.0)
        history.add("write", "p2", "b", 0.0, 1.0)
        with pytest.raises(ValueError):
            find_new_old_inversions(history)


class TestAtomicSwsr:
    def test_figure1_not_atomic_but_regular(self):
        violations, inversions = check_atomic_swsr(figure1_history())
        assert violations == []      # regular!
        assert len(inversions) == 1  # but not atomic

    def test_clean_history_atomic(self):
        history = History()
        history.add("write", "w", "a", 0.0, 1.0)
        history.add("read", "r", "a", 2.0, 3.0)
        assert is_atomic_swsr(history)


class TestLinearizability:
    def test_empty_history(self):
        assert check_linearizable(History()).ok

    def test_sequential_reads_after_writes(self):
        history = History()
        history.add("write", "p1", "a", 0.0, 1.0)
        history.add("read", "p2", "a", 2.0, 3.0)
        result = check_linearizable(history)
        assert result.ok
        assert [op.value for op in result.order] == ["a", "a"]

    def test_stale_read_not_linearizable(self):
        history = History()
        history.add("write", "p1", "a", 0.0, 1.0)
        history.add("write", "p1", "b", 2.0, 3.0)
        history.add("read", "p2", "a", 4.0, 5.0)
        assert not check_linearizable(history).ok

    def test_concurrent_write_read_both_orders_ok(self):
        history = History()
        history.add("write", "p1", "a", 0.0, 1.0)
        history.add("write", "p2", "b", 2.0, 8.0)
        history.add("read", "p3", "a", 3.0, 4.0)   # write(b) not yet applied
        assert check_linearizable(history).ok
        history2 = History()
        history2.add("write", "p1", "a", 0.0, 1.0)
        history2.add("write", "p2", "b", 2.0, 8.0)
        history2.add("read", "p3", "b", 3.0, 4.0)  # write(b) already applied
        assert check_linearizable(history2).ok

    def test_figure1_inversion_not_linearizable(self):
        assert not check_linearizable(figure1_history(),
                                      initial="v_init").ok

    def test_initial_value_read(self):
        history = History()
        history.add("read", "p1", None, 0.0, 1.0)
        assert check_linearizable(history, initial=None).ok
        assert not check_linearizable(history, initial="set").ok

    def test_multi_writer_interleaving(self):
        history = History()
        history.add("write", "p1", "a", 0.0, 5.0)
        history.add("write", "p2", "b", 1.0, 6.0)
        history.add("read", "p3", "a", 7.0, 8.0)   # b then a: fine
        assert check_linearizable(history).ok

    def test_cross_reader_disagreement_not_linearizable(self):
        """Two sequential readers returning opposite orders."""
        history = History()
        history.add("write", "p1", "a", 0.0, 1.0)
        history.add("write", "p2", "b", 2.0, 20.0)
        history.add("read", "p3", "b", 3.0, 4.0)
        history.add("read", "p4", "a", 5.0, 6.0)   # after p3's read: stale
        assert not check_linearizable(history).ok

    def test_witness_order_is_legal(self):
        history = History()
        history.add("write", "p1", "a", 0.0, 3.0)
        history.add("read", "p2", "a", 1.0, 2.0)
        result = check_linearizable(history)
        assert result.ok
        kinds = [op.kind for op in result.order]
        assert kinds == ["write", "read"]

    def test_register_filter(self):
        history = History()
        history.add("write", "p1", "a", 0.0, 1.0, register="x")
        history.add("read", "p2", "stale", 2.0, 3.0, register="y")
        assert check_linearizable(history, register="x").ok
