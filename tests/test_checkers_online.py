"""Online checkers agree with their offline counterparts — property tests.

The streaming pipeline's whole claim is *equivalence*: every incremental
checker in ``repro.checkers.online`` must compute exactly what the batch
checker it replaces computes, on any history fed in completion order.
These tests drive that claim with the same seeded generators the offline
checkers are oracle-tested with (``test_checkers_properties``), the
initial-value edge cases PR 3 pinned, the committed regression corpus
(``tests/replays/wsn-jump-atomic.json``), and live scenario runs where
the online verdicts are produced by the engine itself.
"""

import json
import os
import random

import pytest

from repro.checkers.atomicity import (check_linearizable,
                                      find_new_old_inversions)
from repro.checkers.history import History, Operation
from repro.checkers.online import (OnlineInversionDetector,
                                   OnlineRegularityChecker,
                                   OnlineTauTracker, StreamingLinearizer)
from repro.checkers.regularity import check_regularity
from repro.checkers.stabilization import (find_tau_stab,
                                          stabilization_report)
from repro.checkers.stream import ObservationStream, history_digest
from repro.workloads.scenarios import (INITIAL, run_kv_scenario,
                                       run_swsr_scenario)
from test_checkers_properties import (gen_mwmr_history, gen_rewrite_history,
                                      gen_swsr_history)

REPLAYS = os.path.join(os.path.dirname(__file__), "replays")


def replay(history, *checkers):
    """Feed a finished history in completion (response-time) order."""
    for op in sorted(history.ops,
                     key=lambda op: (op.response, op.invoke, op.op_id)):
        for checker in checkers:
            checker.observe(op)
    for checker in checkers:
        checker.finish()


def regularity_key(violations):
    return {(v.read.op_id, repr(v.returned)) for v in violations}


def inversion_key(inversions):
    return {(i.first.op_id, i.second.op_id,
             i.first_write_index, i.second_write_index) for i in inversions}


class TestOnlineRegularityAgainstOffline:
    def test_agrees_on_generated_histories(self):
        rng = random.Random(1234)
        for trial in range(300):
            history = gen_swsr_history(rng, readers=1 + trial % 2)
            offline = regularity_key(check_regularity(history,
                                                      initial=INITIAL))
            checker = OnlineRegularityChecker(initial=INITIAL)
            replay(history, checker)
            assert regularity_key(checker.violations) == offline, \
                f"trial {trial}:\n{history.format()}"

    def test_violations_after_matches_offline_cut(self):
        rng = random.Random(42)
        for trial in range(100):
            history = gen_swsr_history(rng)
            checker = OnlineRegularityChecker(initial=INITIAL)
            replay(history, checker)
            for cut in (0.0, 2.0, 5.0):
                offline = regularity_key(
                    check_regularity(history, cut, initial=INITIAL))
                assert regularity_key(
                    checker.violations_after(cut)) == offline


class TestOnlineInversionsAgainstOffline:
    def test_agrees_on_generated_histories(self):
        rng = random.Random(4321)
        seen_inversions = 0
        for trial in range(300):
            history = gen_swsr_history(rng, readers=1 + trial % 2)
            offline = inversion_key(
                find_new_old_inversions(history, initial=INITIAL))
            seen_inversions += bool(offline)
            detector = OnlineInversionDetector(initial=INITIAL)
            replay(history, detector)
            assert inversion_key(detector.inversions) == offline, \
                f"trial {trial}:\n{history.format()}"
        assert seen_inversions > 0       # the generator exercises both sides

    def test_agrees_on_initial_rewrite_histories(self):
        """The initial-value edge PR 3 fixed: a real write may rewrite the
        initial value, making attribution feasibility-constrained."""
        rng = random.Random(777)
        for trial in range(300):
            history = gen_rewrite_history(rng)
            offline = inversion_key(
                find_new_old_inversions(history, initial=INITIAL))
            detector = OnlineInversionDetector(initial=INITIAL)
            replay(history, detector)
            assert inversion_key(detector.inversions) == offline, \
                f"trial {trial}:\n{history.format()}"

    def test_future_rewrite_is_not_a_feasible_attribution(self):
        history = History()
        history.add("write", "w", "a", 0.0, 1.0)
        history.add("read", "r0", INITIAL, 10.0, 11.0)
        history.add("read", "r0", "a", 20.0, 21.0)
        history.add("write", "w", INITIAL, 100.0, 101.0)
        detector = OnlineInversionDetector(initial=INITIAL)
        replay(history, detector)
        assert detector.inversions == []

    def test_infeasible_initial_does_not_mask_inversions(self):
        history = History()
        history.add("write", "w", "a", 1.0, 2.0)
        history.add("write", "w", INITIAL, 5.0, 9.0)
        history.add("read", "r0", INITIAL, 5.5, 6.0)
        history.add("read", "r0", "a", 6.5, 7.0)
        detector = OnlineInversionDetector(initial=INITIAL)
        replay(history, detector)
        assert len(detector.inversions) == 1

    def test_read_of_future_write_is_attributed_like_offline(self):
        """Pre-stabilization garbage can coincide with a value written
        only later; offline attributes the read to that future write and
        the watch-list reproduces it."""
        history = History()
        history.add("read", "r0", "w1", 0.0, 0.5)     # value of a later write
        history.add("write", "w", "w0", 1.0, 2.0)
        history.add("read", "r0", "w0", 3.0, 4.0)
        history.add("write", "w", "w1", 5.0, 6.0)
        offline = inversion_key(find_new_old_inversions(history))
        detector = OnlineInversionDetector()
        replay(history, detector)
        assert inversion_key(detector.inversions) == offline
        assert len(offline) == 1


class TestOnlineTauAgainstOffline:
    def test_tau_stab_matches_direct_scan(self):
        rng = random.Random(1618)
        for trial in range(200):
            history = gen_swsr_history(rng, readers=1 + trial % 2)
            for mode in ("regular", "atomic"):
                for tau in (0.0, 1.5, 4.0):
                    offline = find_tau_stab(history, mode=mode,
                                            initial=INITIAL, tau_no_tr=tau)
                    tracker = OnlineTauTracker(mode=mode, initial=INITIAL)
                    replay(history, tracker)
                    assert tracker.tau_stab(tau) == offline, \
                        f"trial {trial} mode {mode} tau {tau}:\n" \
                        f"{history.format()}"

    def test_full_report_matches_offline(self):
        rng = random.Random(2024)
        for trial in range(150):
            history = gen_swsr_history(rng)
            for mode in ("regular", "atomic"):
                offline = stabilization_report(history, mode=mode,
                                               initial=INITIAL,
                                               tau_no_tr=0.0)
                tracker = OnlineTauTracker(mode=mode, initial=INITIAL)
                replay(history, tracker)
                online = tracker.report(0.0)
                assert (online.tau_stab, online.tau_1w, online.dirty_reads,
                        online.total_reads, online.stable) == \
                    (offline.tau_stab, offline.tau_1w, offline.dirty_reads,
                     offline.total_reads, offline.stable), \
                    f"trial {trial} mode {mode}:\n{history.format()}"


class TestStreamingLinearizerAgainstOffline:
    def test_agrees_on_mwmr_histories(self):
        rng = random.Random(2718)
        unlinearizable = 0
        for trial in range(250):
            history = gen_mwmr_history(rng)
            offline = bool(check_linearizable(history, initial=INITIAL))
            unlinearizable += not offline
            linearizer = StreamingLinearizer(initial=INITIAL)
            replay(history, linearizer)
            assert linearizer.ok("reg") == offline, \
                f"trial {trial}:\n{history.format()}"
        assert unlinearizable > 0

    def test_seal_cutoff_matches_offline_suffix_check(self):
        rng = random.Random(99)
        for trial in range(120):
            history = gen_mwmr_history(rng)
            cutoff = float(rng.randrange(0, 8))
            suffix = History(Operation(op.kind, op.process, op.value,
                                       op.invoke, op.response,
                                       register=op.register)
                             for op in history.ops if op.invoke >= cutoff)
            offline = bool(check_linearizable(suffix, initial=INITIAL))
            linearizer = StreamingLinearizer(initial=INITIAL)
            linearizer.seal("reg", cutoff)
            replay(history, linearizer)
            assert linearizer.ok("reg") == offline, \
                f"trial {trial} cutoff {cutoff}:\n{history.format()}"

    def test_registers_are_independent(self):
        history = History()
        history.add("write", "p0", "a", 0.0, 1.0, register="kv/x")
        history.add("read", "p1", "a", 2.0, 3.0, register="kv/x")
        history.add("write", "p0", "b", 0.0, 1.0, register="kv/y")
        history.add("read", "p1", "nope", 2.0, 3.0, register="kv/y")
        linearizer = StreamingLinearizer()
        replay(history, linearizer)
        assert linearizer.verdicts() == {"kv/x": True, "kv/y": False}


class TestRegressionCorpus:
    """Scenario-level equivalence on the committed counterexample."""

    def _corpus_case(self):
        from repro.fuzz.gen import case_from_dict
        path = os.path.join(REPLAYS, "wsn-jump-atomic.json")
        with open(path, encoding="utf-8") as handle:
            return case_from_dict(json.load(handle)["case"])

    def test_online_report_matches_offline_on_wsn_jump(self):
        case = self._corpus_case()
        result = run_swsr_scenario(trace_backend="null",
                                   **case.scenario_kwargs())
        assert result.completed
        timeline = case.fault_timeline()
        tau = max(result.tau_no_tr, timeline.last_event_time)
        mode = "atomic" if case.kind == "atomic" else "regular"
        offline = stabilization_report(result.history, mode=mode,
                                       initial=INITIAL, tau_no_tr=tau)
        online = result.stream_report(tau)
        assert (online.tau_stab, online.dirty_reads, online.stable) == \
            (offline.tau_stab, offline.dirty_reads, offline.stable)
        # the corpus case is a *violation*: both judgements must agree it
        # never stabilizes after the adversary's last action.
        assert online.stable is False

    def test_online_inversions_match_offline_on_wsn_jump(self):
        case = self._corpus_case()
        result = run_swsr_scenario(trace_backend="null",
                                   **case.scenario_kwargs())
        offline = len(find_new_old_inversions(
            result.history, after=result.tau_no_tr, initial=INITIAL))
        assert result.inversions_after(result.tau_no_tr) == offline


class TestScenarioStreamEquivalence:
    """The engine's live verdicts equal an offline rescan of the history."""

    @pytest.mark.parametrize("kind", ["regular", "atomic"])
    def test_swsr_scenario_report_matches_offline(self, kind):
        for seed in (0, 3, 7):
            result = run_swsr_scenario(kind=kind, seed=seed, num_writes=5,
                                       num_reads=5, reader_offset=0.5,
                                       corruption_times=(2.0,),
                                       byzantine_count=1)
            if not (result.completed and result.history.reads()):
                continue
            mode = "atomic" if kind == "atomic" else "regular"
            offline = stabilization_report(result.history, mode=mode,
                                           initial=INITIAL,
                                           tau_no_tr=result.tau_no_tr)
            online = result.report
            assert (online.tau_stab, online.tau_1w, online.dirty_reads,
                    online.total_reads, online.stable) == \
                (offline.tau_stab, offline.tau_1w, offline.dirty_reads,
                 offline.total_reads, offline.stable)

    def test_kv_scenario_verdicts_match_offline(self):
        result = run_kv_scenario(shard_count=2, num_keys=3, rounds=2,
                                 seed=5, corruption_times=(2.0,))
        for key in result.extra["keys"]:
            register = f"kv/{key}"
            tau = result.tau_by_shard[result.store.shard_for(key)]
            suffix = History(Operation(op.kind, op.process, op.value,
                                       op.invoke, op.response,
                                       register=op.register)
                             for op in result.history.ops
                             if op.register == register
                             and op.invoke >= tau)
            assert result.per_key_linearizable[key] == \
                bool(check_linearizable(suffix).ok)


class TestWindowedModes:
    """Bounded windows: sound verdicts, exactness flagged, O(window) state."""

    def _clean_history(self, ops):
        history = History()
        now = 0.0
        for index in range(ops):
            history.add("write", "w", f"w{index}", now, now + 1.0)
            history.add("read", "r", f"w{index}", now + 1.5, now + 2.0)
            now += 3.0
        return history

    def test_windowed_tracker_stays_exact_on_clean_runs(self):
        history = self._clean_history(400)
        tracker = OnlineTauTracker(mode="atomic", initial=INITIAL,
                                   write_window=8, read_window=8,
                                   max_records=8, candidate_cap=32)
        replay(history, tracker)
        report = tracker.report(0.0)
        assert report.stable and report.dirty_reads == 0
        assert tracker.exact
        # bounded state: the write log must not grow with the run
        assert len(tracker.inversions._writes) <= 8

    def test_windowed_detector_still_catches_inversions(self):
        history = History()
        now = 0.0
        for index in range(100):
            history.add("write", "w", f"w{index}", now, now + 1.0)
            now += 2.0
        history.add("read", "r", "w99", now, now + 0.5)
        history.add("read", "r", "w90", now + 1.0, now + 1.5)
        detector = OnlineInversionDetector(initial=INITIAL,
                                           write_window=16, read_window=16)
        replay(history, detector)
        assert detector.inversion_count == 1
        assert detector.exact

    def test_capped_records_flip_exact_instead_of_undercounting(self):
        """Counts stay right past max_records, but the truncated record
        list can no longer enumerate pairs — exactness is surrendered
        rather than letting pairs_after() silently undercount."""
        history = History()
        for index in range(4):
            history.add("write", "w", f"w{index}", float(index),
                        index + 0.4)
        history.add("read", "r", "w3", 10.0, 10.5)
        for k, invoke in ((0, 11.0), (1, 12.0), (2, 13.0)):
            history.add("read", "r", f"w{k}", invoke, invoke + 0.5)
        detector = OnlineInversionDetector(initial=INITIAL, max_records=2)
        replay(history, detector)
        assert detector.inversion_count == 3
        assert len(detector.inversions) == 2
        assert not detector.exact

    def test_tau_hint_prunes_write_log_but_answers_hinted_cut(self):
        history = self._clean_history(50)
        exact = OnlineTauTracker(mode="regular", initial=INITIAL)
        hinted = OnlineTauTracker(mode="regular", initial=INITIAL,
                                  tau_hint=0.0)
        replay(history, exact)
        replay(history, hinted)
        full, pruned = exact.report(0.0), hinted.report(0.0)
        assert (full.tau_1w, full.tau_stab, full.stable) == \
            (pruned.tau_1w, pruned.tau_stab, pruned.stable)
        assert len(hinted._w_invokes) == 0      # the O(n) log is gone

    def test_window_overrun_flags_inexact_instead_of_guessing(self):
        history = History()
        # a read that stays in flight across far more writes than the
        # window retains — the last-preceding write is evicted.
        for index in range(40):
            history.add("write", "w", f"w{index}",
                        float(index), index + 0.5)
        history.add("read", "r", "w0", 0.2, 100.0)
        detector = OnlineInversionDetector(initial=INITIAL, write_window=4)
        replay(history, detector)
        assert not detector.exact


class TestObservationStream:
    def test_counters_and_digest_single_pass(self):
        result = run_swsr_scenario(seed=3, num_writes=3, num_reads=3,
                                   corruption_times=(2.0,))
        stream = result.stream
        assert stream.ops == len(result.history)
        assert stream.writes == len(result.history.writes())
        assert stream.reads == len(result.history.reads())
        assert stream.digest() == history_digest(result.history)
        assert result.summarize().history_digest == stream.digest()

    def test_digest_is_order_independent(self):
        ops = [Operation("write", "w", "w0", 1.0, 2.0),
               Operation("read", "r", "w0", 3.0, 4.0),
               Operation("write", "w", "w1", 5.0, 6.0)]
        forward, backward = ObservationStream(), ObservationStream()
        for op in ops:
            forward.observe(op)
        for op in reversed(ops):
            backward.observe(op)
        assert forward.digest() == backward.digest()

    def test_digest_distinguishes_content(self):
        base = [Operation("write", "w", "w0", 1.0, 2.0)]
        other = [Operation("write", "w", "w0", 1.0, 2.5)]
        assert history_digest(base) != history_digest(other)
        assert history_digest(base) == history_digest(list(base))

    def test_soak_scenario_streams_without_history(self):
        from repro.workloads.scenarios import run_soak_scenario
        result = run_soak_scenario(seed=2, num_writes=30, num_reads=30,
                                   fault_bursts=2, fault_period=3.0,
                                   chunk_ops=8)
        assert result.history is None
        summary = result.summarize()
        assert summary.completed and summary.stable
        assert summary.ops == 60 and summary.writes == 30
        assert result.extra["tracker"].exact
