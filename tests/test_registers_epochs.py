"""Tests for the bounded epoch labeling scheme of [1] (Section 5.2)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.registers.epochs import Epoch, EpochLabeling


@st.composite
def epochs(draw, k=3):
    """Random valid epochs for parameter k."""
    K = k * k + 1
    s = draw(st.integers(min_value=1, max_value=K))
    members = draw(st.sets(st.integers(min_value=1, max_value=K),
                           min_size=k, max_size=k))
    return Epoch(s, frozenset(members))


class TestDomain:
    def test_k_must_exceed_one(self):
        with pytest.raises(ValueError):
            EpochLabeling(1)

    def test_universe_size(self):
        labeling = EpochLabeling(4)
        assert labeling.K == 17

    def test_initial_is_valid(self):
        labeling = EpochLabeling(3)
        assert labeling.is_valid(labeling.initial())

    def test_random_epoch_is_valid(self):
        labeling = EpochLabeling(3)
        rng = random.Random(0)
        for _ in range(50):
            assert labeling.is_valid(labeling.random_epoch(rng))

    def test_invalid_shapes_rejected(self):
        labeling = EpochLabeling(3)
        assert not labeling.is_valid("garbage")
        assert not labeling.is_valid(Epoch(0, frozenset({1, 2, 3})))
        assert not labeling.is_valid(Epoch(1, frozenset({1, 2})))     # |A| != k
        assert not labeling.is_valid(Epoch(1, frozenset({1, 2, 99})))  # out of X


class TestOrder:
    def test_greater_definition(self):
        labeling = EpochLabeling(2)
        older = Epoch(1, frozenset({4, 5}))
        newer = Epoch(2, frozenset({1, 3}))
        # newer > older: older.s=1 in newer.A, newer.s=2 not in older.A
        assert labeling.greater(newer, older)
        assert not labeling.greater(older, newer)

    def test_incomparable_pair_exists(self):
        labeling = EpochLabeling(2)
        a = Epoch(1, frozenset({2, 3}))
        b = Epoch(2, frozenset({1, 3}))
        # each one's s is in the other's A: neither dominates
        assert not labeling.greater(a, b)
        assert not labeling.greater(b, a)

    def test_geq_reflexive(self):
        labeling = EpochLabeling(3)
        epoch = labeling.initial()
        assert labeling.geq(epoch, epoch)

    @given(epochs(), epochs())
    @settings(max_examples=200)
    def test_antisymmetry(self, a, b):
        labeling = EpochLabeling(3)
        if a != b:
            assert not (labeling.greater(a, b) and labeling.greater(b, a))

    def test_max_epoch_when_dominant_exists(self):
        labeling = EpochLabeling(2)
        older = Epoch(1, frozenset({4, 5}))
        newer = labeling.next_epoch([older])
        assert labeling.max_epoch([older, newer]) == newer

    def test_max_epoch_none_for_antichain(self):
        labeling = EpochLabeling(2)
        a = Epoch(1, frozenset({2, 3}))
        b = Epoch(2, frozenset({1, 3}))
        assert labeling.max_epoch([a, b]) is None

    def test_max_epoch_singleton(self):
        labeling = EpochLabeling(3)
        epoch = labeling.initial()
        assert labeling.max_epoch([epoch]) == epoch


class TestNextEpoch:
    @given(st.lists(epochs(), min_size=0, max_size=3))
    @settings(max_examples=200)
    def test_next_epoch_dominates_every_input(self, inputs):
        """The central property: next_epoch(S) ≻ e for every e in S."""
        labeling = EpochLabeling(3)
        new = labeling.next_epoch(inputs)
        assert labeling.is_valid(new)
        for epoch in inputs:
            assert labeling.greater(new, epoch)
            assert not labeling.greater(epoch, new)

    def test_next_epoch_of_duplicates(self):
        labeling = EpochLabeling(3)
        epoch = labeling.initial()
        new = labeling.next_epoch([epoch, epoch, epoch])
        assert labeling.greater(new, epoch)

    def test_rejects_too_many_inputs(self):
        labeling = EpochLabeling(2)
        rng = random.Random(1)
        three = [labeling.random_epoch(rng) for _ in range(3)]
        with pytest.raises(ValueError):
            labeling.next_epoch(three)

    def test_deterministic(self):
        labeling = EpochLabeling(3)
        inputs = [labeling.initial()]
        assert labeling.next_epoch(inputs) == labeling.next_epoch(inputs)

    def test_chain_of_renewals_never_cycles_quickly(self):
        """Repeated renewal keeps producing labels greater than the last.

        (The scheme guarantees domination over the *inputs*; a long chain
        exercises many distinct labels.)
        """
        labeling = EpochLabeling(3)
        current = labeling.initial()
        for _ in range(50):
            new = labeling.next_epoch([current])
            assert labeling.greater(new, current)
            current = new

    def test_escapes_adversarial_antichain(self):
        """Renewal from an incomparable (corrupted) set dominates all of it."""
        labeling = EpochLabeling(2)
        a = Epoch(1, frozenset({2, 3}))
        b = Epoch(2, frozenset({1, 3}))
        new = labeling.next_epoch([a, b])
        assert labeling.greater(new, a)
        assert labeling.greater(new, b)
