"""Tests for the ``repro-profile`` entry point (repro.profiling)."""

import json

import pytest

import repro.sim.scheduler as scheduler_mod
from repro.profiling import (SORT_KEYS, _parse_param, build_parser, main,
                             profile_spec)
from repro.workloads.spec import ScenarioSpec


class TestProfileSpec:
    def test_document_shape(self):
        spec = ScenarioSpec("swsr", seed=3, num_writes=2, num_reads=2)
        document = profile_spec(spec, top=5)
        assert document["spec"] == {
            "family": "swsr",
            "params": {"seed": 3, "num_writes": 2, "num_reads": 2},
        }
        assert document["kernel"] == scheduler_mod.DEFAULT_KERNEL
        assert document["events_processed"] > 0
        assert document["events_per_sec"] > 0
        assert 0 < len(document["top"]) <= 5
        entry = document["top"][0]
        assert set(entry) == {"function", "file", "line", "ncalls",
                              "primitive_calls", "tottime", "cumtime"}

    def test_sharded_families_report_summed_events(self):
        spec = ScenarioSpec("kv", shard_count=2, num_keys=2, rounds=1,
                            seed=3)
        document = profile_spec(spec, top=3)
        assert document["events_processed"] > 0
        assert document["events_per_sec"] > 0

    def test_sort_key_validated(self):
        spec = ScenarioSpec("swsr", seed=1, num_writes=1, num_reads=1)
        with pytest.raises(ValueError, match="sort must be one of"):
            profile_spec(spec, sort="bogus")

    def test_cumulative_sort_orders_by_cumtime(self):
        spec = ScenarioSpec("swsr", seed=1, num_writes=1, num_reads=1)
        document = profile_spec(spec, top=10, sort="cumulative")
        cumtimes = [entry["cumtime"] for entry in document["top"]]
        assert cumtimes == sorted(cumtimes, reverse=True)


class TestParamParsing:
    def test_values_parse_as_json(self):
        assert _parse_param("n=25") == ("n", 25)
        assert _parse_param("corruption_times=[2.0]") == \
            ("corruption_times", [2.0])
        assert _parse_param("kind=regular") == ("kind", "regular")

    def test_malformed_param_rejected(self):
        import argparse
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_param("no-equals-sign")
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_param("=5")

    def test_parser_accepts_all_sort_keys(self):
        parser = build_parser()
        for key in SORT_KEYS:
            args = parser.parse_args(["--family", "swsr", "--sort", key])
            assert args.sort == key


class TestMain:
    def test_writes_json_to_file(self, tmp_path, monkeypatch):
        monkeypatch.setattr(scheduler_mod, "DEFAULT_KERNEL", "calendar")
        out = tmp_path / "profile.json"
        code = main(["--family", "swsr", "--param", "seed=3",
                     "--param", "num_writes=1", "--param", "num_reads=1",
                     "--top", "3", "--out", str(out)])
        assert code == 0
        document = json.loads(out.read_text())
        assert document["spec"]["family"] == "swsr"
        assert len(document["top"]) == 3

    def test_kernel_flag_selects_heap(self, tmp_path, monkeypatch):
        monkeypatch.setattr(scheduler_mod, "DEFAULT_KERNEL", "calendar")
        out = tmp_path / "heap.json"
        code = main(["--family", "swsr", "--param", "seed=3",
                     "--param", "num_writes=1", "--param", "num_reads=1",
                     "--kernel", "heap", "--out", str(out)])
        assert code == 0
        assert json.loads(out.read_text())["kernel"] == "heap"

    def test_unknown_family_exits_nonzero(self, capsys):
        assert main(["--family", "not-a-family"]) == 2
        assert "repro-profile:" in capsys.readouterr().err

    def test_bad_param_exits_nonzero(self):
        assert main(["--family", "swsr", "--param", "bogus_knob=1"]) == 2
