"""Tests of the SWMR atomic register construction (Section 5.1)."""

import pytest

from repro.faults.byzantine import strategy_factory
from repro.faults.transient import TransientFaultInjector
from repro.registers.swmr import copy_reg_id
from repro.registers.system import Cluster, ClusterConfig, build_swmr


def make_system(reader_pids=("r1", "r2", "r3"), n=9, t=1, seed=0, **kwargs):
    cluster = Cluster(ClusterConfig(n=n, t=t, seed=seed, **kwargs))
    register = build_swmr(cluster, list(reader_pids), initial="v_init")
    return cluster, register


def run_op(cluster, handle, max_events=1_000_000):
    cluster.run_ops([handle], max_events=max_events)
    return handle.result


class TestBasics:
    def test_all_readers_see_written_value(self):
        cluster, register = make_system()
        run_op(cluster, register.write("shared"))
        for reader_pid in ("r1", "r2", "r3"):
            assert run_op(cluster, register.read(reader_pid)) == "shared"

    def test_initial_value_visible_to_all(self):
        cluster, register = make_system()
        for reader_pid in ("r1", "r2", "r3"):
            assert run_op(cluster, register.read(reader_pid)) == "v_init"

    def test_copy_register_ids(self):
        assert copy_reg_id("reg", "r2") == "reg/r2"

    def test_servers_host_one_automaton_per_reader(self):
        cluster, register = make_system()
        for server in cluster.servers:
            for reader_pid in ("r1", "r2", "r3"):
                assert copy_reg_id("reg", reader_pid) in server.automatons

    def test_write_updates_every_copy(self):
        cluster, register = make_system()
        run_op(cluster, register.write("x"))
        cluster.run()
        for server in cluster.servers:
            for reader_pid in ("r1", "r2", "r3"):
                automaton = server.automatons[copy_reg_id("reg", reader_pid)]
                assert automaton.last_val == (1, "x")

    def test_sequence_visible_in_order_per_reader(self):
        cluster, register = make_system()
        for value in ("a", "b", "c"):
            run_op(cluster, register.write(value))
            assert run_op(cluster, register.read("r1")) == value
            assert run_op(cluster, register.read("r2")) == value


class TestFaults:
    def test_byzantine_server_tolerated(self):
        cluster, register = make_system(seed=3)
        cluster.make_byzantine(["s5"],
                               strategy_factory("random-garbage", cluster))
        run_op(cluster, register.write("safe"))
        assert run_op(cluster, register.read("r2")) == "safe"

    def test_recovers_from_corruption(self):
        cluster, register = make_system(seed=4)
        injector = TransientFaultInjector.for_cluster(cluster)
        injector.corrupt_all(cluster.servers)
        run_op(cluster, register.write("healed"))
        for reader_pid in ("r1", "r2", "r3"):
            assert run_op(cluster, register.read(reader_pid)) == "healed"

    def test_per_reader_no_inversion(self):
        """Each reader individually sees a monotone history."""
        cluster, register = make_system(seed=5)
        cluster.make_byzantine(["s1"],
                               strategy_factory("inversion-attack", cluster))
        seen = []
        for value in ("a", "b", "c", "d"):
            run_op(cluster, register.write(value))
            seen.append(run_op(cluster, register.read("r1")))
        assert seen == ["a", "b", "c", "d"]


class TestConcurrency:
    def test_two_readers_reading_concurrently(self):
        cluster, register = make_system(seed=6)
        run_op(cluster, register.write("base"))
        first = register.read("r1")
        second = register.read("r2")
        cluster.run_ops([first, second])
        assert first.result == "base"
        assert second.result == "base"

    def test_read_concurrent_with_write_returns_old_or_new(self):
        cluster, register = make_system(seed=7)
        run_op(cluster, register.write("old"))
        write = register.write("new")
        read = register.read("r3")
        cluster.run_ops([write, read])
        assert read.result in ("old", "new")
