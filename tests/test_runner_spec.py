"""SweepSpec expansion, seed derivation and (de)serialization."""

import pytest

from repro.runner import SweepSpec, derive_seed, smoke_specs
from repro.runner.spec import expand


def _spec(**overrides):
    kwargs = dict(name="s", scenario="swsr",
                  base={"n": 9, "t": 1},
                  grid={"kind": ["regular", "atomic"],
                        "byzantine_count": [0, 1]},
                  seeds=[0, 1, 2])
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


class TestExpansion:
    def test_cell_count_is_grid_product_times_seeds(self):
        assert len(_spec().cells()) == 2 * 2 * 3

    def test_expansion_is_deterministic(self):
        first, second = _spec().cells(), _spec().cells()
        assert [c.cell_id for c in first] == [c.cell_id for c in second]
        assert [c.params for c in first] == [c.params for c in second]

    def test_grid_order_is_canonical_not_declaration_order(self):
        a = SweepSpec(name="s", scenario="swsr",
                      grid={"b": [1], "a": [2]}).cells()
        b = SweepSpec(name="s", scenario="swsr",
                      grid={"a": [2], "b": [1]}).cells()
        assert [c.params for c in a] == [c.params for c in b]

    def test_base_applied_to_every_cell(self):
        assert all(cell.params["n"] == 9 for cell in _spec().cells())

    def test_cell_ids_unique_and_prefixed(self):
        ids = [cell.cell_id for cell in _spec().cells()]
        assert len(set(ids)) == len(ids)
        assert all(cid.startswith("s/swsr/") for cid in ids)

    def test_empty_grid_yields_base_cells(self):
        spec = SweepSpec(name="s", scenario="swsr", base={"n": 9},
                         seeds=[0, 1])
        assert len(spec.cells()) == 2


class TestSeeds:
    def test_derived_seeds_are_stable(self):
        params = {"n": 9, "kind": "regular"}
        assert derive_seed("s", "swsr", params, 0) == \
            derive_seed("s", "swsr", params, 0)

    def test_derived_seeds_differ_across_replicates_and_params(self):
        params = {"n": 9, "kind": "regular"}
        assert derive_seed("s", "swsr", params, 0) != \
            derive_seed("s", "swsr", params, 1)
        assert derive_seed("s", "swsr", params, 0) != \
            derive_seed("s", "swsr", {"n": 17, "kind": "regular"}, 0)

    def test_seeds_none_keeps_explicit_seed(self):
        spec = SweepSpec(name="s", scenario="swsr",
                         base={"seed": 123}, grid={"kind": ["regular"]},
                         seeds=None)
        (cell,) = spec.cells()
        assert cell.params["seed"] == 123

    def test_replicates_get_distinct_derived_seeds(self):
        cells = _spec().cells()
        seeds = {cell.params["seed"] for cell in cells}
        assert len(seeds) == len(cells)


class TestValidation:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            SweepSpec(name="s", scenario="nope")

    def test_empty_grid_axis_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            SweepSpec(name="s", scenario="swsr", grid={"kind": []})

    def test_duplicate_cell_ids_rejected_across_specs(self):
        with pytest.raises(ValueError, match="duplicate cell id"):
            expand([_spec(), _spec()])


class TestSerialization:
    def test_json_round_trip(self):
        spec = _spec()
        (loaded,) = SweepSpec.from_json(spec.to_json())
        assert loaded == spec
        assert [c.params for c in loaded.cells()] == \
            [c.params for c in spec.cells()]

    def test_from_json_accepts_a_list(self):
        text = "[" + _spec().to_json() + "]"
        assert len(SweepSpec.from_json(text)) == 1

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(_spec().to_json(), encoding="utf-8")
        (loaded,) = SweepSpec.load(str(path))
        assert loaded == _spec()


class TestSmokeSpecs:
    def test_at_least_24_cells_spanning_swsr_and_mwmr(self):
        cells = expand(smoke_specs())
        assert len(cells) >= 24
        scenarios = {cell.scenario for cell in cells}
        assert {"swsr", "mwmr"} <= scenarios

    def test_smoke_cells_have_unique_ids_and_seeds_assigned(self):
        cells = expand(smoke_specs())
        assert len({cell.cell_id for cell in cells}) == len(cells)
        assert all("seed" in cell.params or cell.scenario == "figure1"
                   for cell in cells)
