"""Tests of the synchronous-link variant (Figure 5 / Theorem 2, t < n/3)."""

import pytest

from repro.faults.byzantine import strategy_factory
from repro.faults.transient import TransientFaultInjector
from repro.registers.swsr_sync import (SyncAtomicReader, SyncAtomicWriter,
                                       SyncRegularReader, SyncRegularWriter,
                                       install_sync_atomic_servers,
                                       install_sync_regular_servers,
                                       sync_params)
from repro.registers.system import Cluster, ClusterConfig
from repro.workloads.scenarios import run_swsr_scenario


def make_sync_system(n=4, t=1, seed=0, atomic=False, **kwargs):
    config = ClusterConfig(n=n, t=t, seed=seed, synchronous=True,
                           delay_bound=1.0, **kwargs)
    cluster = Cluster(config)
    if atomic:
        install_sync_atomic_servers(cluster.servers, "reg", initial="v_init")
        writer = SyncAtomicWriter("w", cluster.scheduler, cluster.trace,
                                  "reg", n, t, 1.0)
        reader = SyncAtomicReader("r", cluster.scheduler, cluster.trace,
                                  "reg", n, t, 1.0)
    else:
        install_sync_regular_servers(cluster.servers, "reg",
                                     initial="v_init")
        writer = SyncRegularWriter("w", cluster.scheduler, cluster.trace,
                                   "reg", n, t, 1.0)
        reader = SyncRegularReader("r", cluster.scheduler, cluster.trace,
                                   "reg", n, t, 1.0)
    cluster.adopt_client(writer)
    cluster.adopt_client(reader)
    return cluster, writer, reader


def run_op(cluster, handle, max_events=500_000):
    cluster.run_ops([handle], max_events=max_events)
    return handle.result


class TestSyncParams:
    def test_bound_is_n_over_3(self):
        sync_params(4, 1, 1.0)  # ok
        with pytest.raises(ValueError):
            sync_params(3, 1, 1.0)

    def test_thresholds(self):
        params = sync_params(7, 2, 1.0)
        assert params.ack_quorum == 7      # all n
        assert params.value_quorum == 3    # t + 1
        assert params.help_quorum == 3     # t + 1
        assert params.delay_bound == 1.0


class TestSyncRegular:
    def test_write_then_read(self):
        cluster, writer, reader = make_sync_system()
        run_op(cluster, writer.write("sync"))
        assert run_op(cluster, reader.read()) == "sync"

    def test_tolerates_one_of_four_byzantine(self):
        """t = 1 with only n = 4 servers — impossible asynchronously."""
        cluster, writer, reader = make_sync_system(seed=1)
        cluster.make_byzantine(["s1"],
                               strategy_factory("random-garbage", cluster))
        run_op(cluster, writer.write("tight"))
        assert run_op(cluster, reader.read()) == "tight"

    def test_silent_byzantine_times_out(self):
        """A mute server forces the timeout path (line 02.M / 11.M)."""
        cluster, writer, reader = make_sync_system(seed=2)
        cluster.make_byzantine(["s2"], strategy_factory("silent", cluster))
        run_op(cluster, writer.write("patience"))
        assert run_op(cluster, reader.read()) == "patience"

    def test_two_byzantine_of_seven(self):
        cluster, writer, reader = make_sync_system(n=7, t=2, seed=3)
        cluster.make_byzantine(["s1"], strategy_factory("silent", cluster))
        cluster.make_byzantine(["s2"], strategy_factory("stale", cluster))
        run_op(cluster, writer.write("seven"))
        assert run_op(cluster, reader.read()) == "seven"

    def test_stabilizes_after_corruption(self):
        cluster, writer, reader = make_sync_system(seed=4)
        injector = TransientFaultInjector.for_cluster(cluster)
        injector.corrupt_all(cluster.servers + [writer, reader])
        run_op(cluster, writer.write("fresh"))
        assert run_op(cluster, reader.read()) == "fresh"


class TestSyncAtomic:
    def test_write_then_read(self):
        cluster, writer, reader = make_sync_system(atomic=True)
        run_op(cluster, writer.write("at"))
        assert run_op(cluster, reader.read()) == "at"

    def test_with_byzantine(self):
        cluster, writer, reader = make_sync_system(atomic=True, seed=5)
        cluster.make_byzantine(["s4"],
                               strategy_factory("inversion-attack", cluster))
        for value in ("a", "b", "c"):
            run_op(cluster, writer.write(value))
            assert run_op(cluster, reader.read()) == value


class TestSyncScenarios:
    def test_regular_scenario_stabilizes(self):
        result = run_swsr_scenario(kind="regular", n=4, t=1, seed=6,
                                   synchronous=True, num_writes=4,
                                   num_reads=4, corruption_times=(2.0,),
                                   byzantine_count=1,
                                   byzantine_strategy="silent")
        assert result.completed
        assert result.report.stable

    def test_atomic_scenario_stabilizes(self):
        result = run_swsr_scenario(kind="atomic", n=7, t=2, seed=7,
                                   synchronous=True, num_writes=4,
                                   num_reads=4, corruption_times=(2.0,),
                                   byzantine_count=2)
        assert result.completed
        assert result.report.stable

    def test_sync_uses_fewer_servers_than_async_for_same_t(self):
        """The headline resilience gap: t=2 needs 7 sync vs 17 async."""
        sync_result = run_swsr_scenario(kind="regular", n=7, t=2, seed=8,
                                        synchronous=True, num_writes=2,
                                        num_reads=2, byzantine_count=2)
        async_result = run_swsr_scenario(kind="regular", n=17, t=2, seed=8,
                                         num_writes=2, num_reads=2,
                                         byzantine_count=2)
        assert sync_result.completed and sync_result.report.stable
        assert async_result.completed and async_result.report.stable
