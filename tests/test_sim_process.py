"""Unit tests for processes, wait conditions and coroutine operations."""

import pytest

from repro.sim.errors import OperationError
from repro.sim.process import (AllOf, AnyOf, Deadline, Predicate, Process,
                               join_all)
from repro.sim.scheduler import Scheduler
from repro.sim.trace import OP_INVOKE, OP_RESPONSE, Trace


def make_process(pid="p"):
    scheduler = Scheduler()
    trace = Trace()
    return Process(pid, scheduler, trace), scheduler, trace


def test_predicate_condition():
    flag = []
    cond = Predicate(lambda: bool(flag))
    assert not cond.satisfied()
    flag.append(1)
    assert cond.satisfied()


def test_anyof_and_allof():
    yes = Predicate(lambda: True)
    no = Predicate(lambda: False)
    assert AnyOf(yes, no).satisfied()
    assert not AnyOf(no, no).satisfied()
    assert AllOf(yes, yes).satisfied()
    assert not AllOf(yes, no).satisfied()


def test_operation_runs_to_completion():
    process, scheduler, _ = make_process()

    def op():
        yield Predicate(lambda: True)
        return "done"

    handle = process.start_operation("demo", op())
    scheduler.run()
    assert handle.done
    assert handle.result == "done"


def test_operation_result_before_completion_raises():
    process, scheduler, _ = make_process()

    def op():
        yield Predicate(lambda: False)
        return "never"

    handle = process.start_operation("demo", op())
    with pytest.raises(OperationError):
        _ = handle.result


def test_operation_blocks_until_condition():
    process, scheduler, _ = make_process()
    box = []

    def op():
        yield Predicate(lambda: bool(box))
        return box[0]

    handle = process.start_operation("demo", op())
    scheduler.run()
    assert not handle.done
    box.append("late")
    process.poll()
    assert handle.done
    assert handle.result == "late"


def test_sequential_clients_reject_overlapping_ops():
    process, scheduler, _ = make_process()

    def op():
        yield Predicate(lambda: False)

    process.start_operation("first", op())
    with pytest.raises(OperationError):
        process.start_operation("second", op())


def test_new_operation_allowed_after_completion():
    process, scheduler, _ = make_process()

    def op(result):
        yield Predicate(lambda: True)
        return result

    first = process.start_operation("first", op(1))
    scheduler.run()
    second = process.start_operation("second", op(2))
    scheduler.run()
    assert first.result == 1
    assert second.result == 2


def test_deadline_wakes_process():
    process, scheduler, _ = make_process()

    def op():
        yield Deadline(5.0)
        return "woke"

    handle = process.start_operation("sleep", op())
    scheduler.run()
    assert handle.done
    assert scheduler.now == 5.0


def test_anyof_deadline_vs_predicate():
    process, scheduler, _ = make_process()
    box = []

    def op():
        yield AnyOf(Predicate(lambda: bool(box)), Deadline(10.0))
        return "done"

    handle = process.start_operation("race", op())
    scheduler.run(until=3.0)
    assert not handle.done
    box.append(1)
    process.poll()
    assert handle.done
    assert scheduler.now < 10.0


def test_operation_trace_events():
    process, scheduler, trace = make_process()

    def op():
        yield Predicate(lambda: True)
        return 7

    process.start_operation("traced", op())
    scheduler.run()
    assert trace.count(OP_INVOKE) == 1
    assert trace.count(OP_RESPONSE) == 1


def test_on_done_callback_fires():
    process, scheduler, _ = make_process()
    seen = []

    def op():
        yield Predicate(lambda: True)
        return "x"

    handle = process.start_operation("cb", op())
    handle.on_done(lambda h: seen.append(h.result))
    scheduler.run()
    assert seen == ["x"]


def test_on_done_after_completion_fires_immediately():
    process, scheduler, _ = make_process()

    def op():
        yield Predicate(lambda: True)
        return "x"

    handle = process.start_operation("cb", op())
    scheduler.run()
    seen = []
    handle.on_done(lambda h: seen.append(1))
    assert seen == [1]


def test_register_corruptible_attribute():
    process, _, _ = make_process()
    process.value = 10
    process.register_corruptible("value", fuzz=lambda rng: 99)
    var = process.corruptible["value"]
    assert var.getter() == 10
    var.setter(var.fuzz(None))
    assert process.value == 99


def test_register_corruptible_var_external_state():
    process, _, _ = make_process()
    box = {"v": 1}
    process.register_corruptible_var(
        "box.v", getter=lambda: box["v"],
        setter=lambda value: box.__setitem__("v", value),
        fuzz=lambda rng: -1)
    var = process.corruptible["box.v"]
    var.setter(var.fuzz(None))
    assert box["v"] == -1


def test_join_all_runs_children_to_completion():
    process, scheduler, _ = make_process()
    gates = [[], []]

    def child(index):
        yield Predicate(lambda: bool(gates[index]))
        return index * 10

    def parent():
        results = yield from join_all(child(0), child(1))
        return results

    handle = process.start_operation("join", parent())
    scheduler.run()
    assert not handle.done
    gates[1].append(1)
    process.poll()
    assert not handle.done
    gates[0].append(1)
    process.poll()
    assert handle.done
    assert handle.result == [0, 10]


def test_join_all_with_instantly_done_children():
    process, scheduler, _ = make_process()

    def instant(value):
        return value
        yield  # pragma: no cover - makes it a generator

    def parent():
        results = yield from join_all(instant("a"), instant("b"))
        return results

    handle = process.start_operation("join", parent())
    scheduler.run()
    assert handle.result == ["a", "b"]


def test_join_all_preserves_result_order():
    process, scheduler, _ = make_process()
    gate = []

    def slow():
        yield Predicate(lambda: bool(gate))
        return "slow"

    def fast():
        yield Predicate(lambda: True)
        return "fast"

    def parent():
        results = yield from join_all(slow(), fast())
        return results

    handle = process.start_operation("join", parent())
    scheduler.run()
    gate.append(1)
    process.poll()
    assert handle.result == ["slow", "fast"]


def test_busy_property():
    process, scheduler, _ = make_process()
    assert not process.busy

    def op():
        yield Predicate(lambda: False)

    process.start_operation("stuck", op())
    assert process.busy
