"""Unit tests for declarative fault plans."""

from repro.faults.schedule import FaultPlan, transient_burst_plan
from repro.faults.transient import TransientFaultInjector
from repro.registers.system import Cluster, ClusterConfig, build_swsr_regular


def make_cluster(seed=0):
    cluster = Cluster(ClusterConfig(n=9, t=1, seed=seed))
    build_swsr_regular(cluster, initial="v_init")
    injector = TransientFaultInjector.for_cluster(cluster)
    return cluster, injector


def test_plan_tracks_tau_no_tr():
    plan = FaultPlan()
    plan.add(3.0, lambda: None)
    plan.add(1.0, lambda: None)
    assert plan.tau_no_tr == 3.0


def test_plan_applies_actions_at_times():
    cluster, injector = make_cluster()
    fired = []
    plan = FaultPlan()
    plan.add(2.0, lambda: fired.append(cluster.scheduler.now))
    plan.apply(cluster.scheduler)
    cluster.run(until=5.0)
    assert fired == [2.0]


def test_burst_plan_corrupts_at_each_time():
    cluster, injector = make_cluster()
    plan = transient_burst_plan(injector, cluster.servers, times=[1.0, 2.0])
    plan.apply(cluster.scheduler)
    cluster.run(until=3.0)
    assert injector.corruptions == 2 * 9 * 2  # two bursts, 9 servers, 2 vars


def test_burst_plan_with_link_garbage():
    cluster, injector = make_cluster()
    plan = transient_burst_plan(
        injector, cluster.servers, times=[1.0],
        link_garbage={("w", "s1"): 2, ("s1", "r"): 1})
    plan.apply(cluster.scheduler)
    cluster.run(until=0.5)
    before = cluster.scheduler.pending_count()
    cluster.run(until=1.5)
    assert injector.corruptions > 0


def test_empty_burst_plan():
    cluster, injector = make_cluster()
    plan = transient_burst_plan(injector, cluster.servers, times=[])
    assert plan.actions == []
    assert plan.tau_no_tr == 0.0
