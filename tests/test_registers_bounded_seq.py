"""Tests for bounded sequence numbers and the clockwise-distance order."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.registers.bounded_seq import (DEFAULT_MODULUS, WsnConfig, cd_geq,
                                         cd_gt, clockwise_distance, next_wsn)


class TestClockwiseDistance:
    def test_forward_distance(self):
        assert clockwise_distance(2, 5, 10) == 3

    def test_wrapping_distance(self):
        assert clockwise_distance(8, 1, 10) == 3

    def test_zero_distance(self):
        assert clockwise_distance(4, 4, 10) == 0


class TestCdOrder:
    def test_simple_greater(self):
        assert cd_gt(5, 2, 100)
        assert not cd_gt(2, 5, 100)

    def test_wraparound_greater(self):
        # 1 is "after" 99 modulo 100: the writer wrapped around.
        assert cd_gt(1, 99, 100)
        assert not cd_gt(99, 1, 100)

    def test_geq_includes_equality(self):
        assert cd_geq(7, 7, 100)
        assert not cd_gt(7, 7, 100)

    def test_antisymmetry_strict(self):
        for x in range(11):
            for y in range(11):
                if x != y:
                    assert cd_gt(x, y, 11) != cd_gt(y, x, 11), (x, y)

    def test_default_modulus_matches_paper(self):
        assert DEFAULT_MODULUS == 2 ** 64 + 1
        assert cd_gt(0, 2 ** 64, DEFAULT_MODULUS)  # wrap from max to 0

    @given(st.integers(min_value=0, max_value=100),
           st.integers(min_value=0, max_value=100))
    @settings(max_examples=200)
    def test_total_on_odd_modulus(self, x, y):
        """With an odd modulus, any two distinct values are comparable."""
        m = 101
        if x != y:
            assert cd_gt(x, y, m) or cd_gt(y, x, m)

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=100)
    def test_successor_is_greater_within_half_range(self, start):
        m = 1001
        value = start % m
        assert cd_gt(next_wsn(value, m), value, m)

    @given(st.integers(min_value=0, max_value=100),
           st.integers(min_value=1, max_value=49))
    @settings(max_examples=200)
    def test_advancing_less_than_half_stays_greater(self, start, steps):
        """Fewer than modulus/2 increments preserve >_cd — the

        system-life-span property behind Lemma 13."""
        m = 101
        value = start % m
        advanced = (value + steps) % m
        assert cd_gt(advanced, value, m)


class TestNextWsn:
    def test_increments(self):
        assert next_wsn(5, 100) == 6

    def test_wraps(self):
        assert next_wsn(99, 100) == 0

    def test_paper_formula(self):
        # line N1: wsn <- (wsn + 1) mod (2^64 + 1)
        assert next_wsn(2 ** 64) == 0


class TestWsnConfig:
    def test_defaults(self):
        config = WsnConfig()
        assert config.modulus == DEFAULT_MODULUS

    def test_system_life_span(self):
        assert WsnConfig(11).system_life_span == 6
        # paper: 2^63 + 1 writes for the default modulus (Lemma 13)
        assert WsnConfig().system_life_span == 2 ** 63 + 1

    def test_in_domain(self):
        config = WsnConfig(10)
        assert config.in_domain(0)
        assert config.in_domain(9)
        assert not config.in_domain(10)
        assert not config.in_domain(-1)
        assert not config.in_domain("junk")

    def test_too_small_modulus_rejected(self):
        with pytest.raises(ValueError):
            WsnConfig(2)

    def test_comparison_shortcuts(self):
        config = WsnConfig(10)
        assert config.gt(3, 1)
        assert config.geq(3, 3)
        assert config.next(9) == 0
