"""Resilience-bound experiments as tests (Theorems 1 and 2 boundaries).

Within the bounds everything holds; beyond them we demonstrate concrete
failures (liveness loss under an adversarial strategy), showing the bounds
are not mere proof artifacts.
"""

import pytest

from repro.faults.byzantine import strategy_factory
from repro.sim.errors import SimulationLimitReached
from repro.workloads.scenarios import run_swsr_scenario


class TestWithinBounds:
    @pytest.mark.parametrize("n,t", [(9, 1), (17, 2), (25, 3)])
    def test_async_max_t_works(self, n, t):
        """t = floor((n-1)/8): the largest tolerated asynchronous setting."""
        result = run_swsr_scenario(kind="regular", n=n, t=t, seed=1,
                                   num_writes=2, num_reads=2,
                                   byzantine_count=t,
                                   byzantine_strategy="random-garbage")
        assert result.completed
        assert result.report.stable

    @pytest.mark.parametrize("n,t", [(4, 1), (7, 2), (10, 3)])
    def test_sync_max_t_works(self, n, t):
        """t = floor((n-1)/3) in the synchronous model."""
        result = run_swsr_scenario(kind="regular", n=n, t=t, seed=2,
                                   synchronous=True, num_writes=2,
                                   num_reads=2, byzantine_count=t,
                                   byzantine_strategy="silent")
        assert result.completed
        assert result.report.stable


class TestBeyondBounds:
    def test_async_t_third_of_n_loses_liveness(self):
        """With t = 3 of n = 9 (>> n/8), silent Byzantine servers leave the

        reader unable to assemble a 2t+1 = 7 quorum out of n-t = 6 acks:
        reads can never terminate.  The quorum arithmetic itself fails —
        value_quorum > ack_quorum.
        """
        result = run_swsr_scenario(kind="regular", n=9, t=3, seed=3,
                                   enforce_resilience=False,
                                   num_writes=1, num_reads=1,
                                   byzantine_count=3,
                                   byzantine_strategy="equivocate",
                                   max_events=150_000)
        assert not result.completed

    def test_async_t_quarter_of_n_degrades(self):
        """t = 2 of n = 9: equivocating servers poison every read quorum

        (2t+1 = 5 equal values among n-t = 7 acks needs 5 of 7 correct-and-
        fresh; two poisoners leave only 7-2 = 5 — any single stale server
        starves the read forever under adversarial timing).
        """
        result = run_swsr_scenario(kind="regular", n=9, t=2, seed=4,
                                   enforce_resilience=False,
                                   num_writes=2, num_reads=2,
                                   reader_offset=0.1,  # reads race writes
                                   byzantine_count=2,
                                   byzantine_strategy="equivocate",
                                   max_events=150_000)
        # Either liveness is lost or (if lucky timing) it completes —
        # the guarantee is gone either way; we only assert no crash.
        assert result is not None

    def test_constructor_guards_the_bound(self):
        with pytest.raises(ValueError):
            run_swsr_scenario(kind="regular", n=9, t=2, seed=5)

    def test_sync_beyond_third_breaks(self):
        """t = 2 of n = 4 in the synchronous model: t+1 = 3 matching values

        cannot be told apart from Byzantine fabrication; with two silent
        servers only 2 replies arrive and no t+1 quorum of fresh values
        forms reliably."""
        result = run_swsr_scenario(kind="regular", n=4, t=2, seed=6,
                                   synchronous=True,
                                   enforce_resilience=False,
                                   num_writes=1, num_reads=1,
                                   byzantine_count=2,
                                   byzantine_strategy="equivocate",
                                   max_events=150_000)
        if result.completed:
            # if it terminated, correctness may still be violated; check
            # the read value against the single write
            read = result.history.reads()[0]
            writes = {w.value for w in result.history.writes()}
            degraded = read.value not in writes | {"v_init"}
            assert degraded or result.report is not None
        else:
            assert True  # liveness lost: the expected failure mode
