"""The committed replay corpus under tests/replays/ must keep replaying.

Every artifact is loaded and re-executed.  Expectations are encoded per
fixture (see tests/replays/README.md): the real ``wsn-jump-atomic``
counterexample documents the Lemma 13 boundary and must keep reproducing;
the synthetic ``injected-burst`` fixture reproduces exactly when the
test-only hook environment it records is set.
"""

import glob
import os

import pytest

from repro.fuzz.harness import INJECT_ENV
from repro.fuzz.replay import ReplayArtifact, replay

REPLAY_DIR = os.path.join(os.path.dirname(__file__), "replays")
ARTIFACTS = sorted(glob.glob(os.path.join(REPLAY_DIR, "*.json")))


def test_corpus_is_nonempty():
    names = {os.path.basename(path) for path in ARTIFACTS}
    assert {"wsn-jump-atomic.json", "injected-burst.json"} <= names


@pytest.mark.parametrize("path", ARTIFACTS,
                         ids=[os.path.basename(p) for p in ARTIFACTS])
def test_artifact_parses_and_is_self_contained(path):
    artifact = ReplayArtifact.load(path)
    assert artifact.case.num_reads >= 1
    assert artifact.signature, "artifact without recorded violations"
    assert artifact.shrink is not None
    assert artifact.original_case is not None
    # shrinking never grows the timeline
    assert len(artifact.case.timeline) <= \
        len(artifact.original_case.timeline)


def test_wsn_jump_reproduces_without_any_env(monkeypatch):
    """A model property, not a bug: the bounded-wsn ring jump persists."""
    monkeypatch.delenv(INJECT_ENV, raising=False)
    artifact = ReplayArtifact.load(
        os.path.join(REPLAY_DIR, "wsn-jump-atomic.json"))
    assert artifact.requires_env is None
    outcome = replay(artifact)
    assert outcome.reproduced
    assert "regularity" in outcome.outcome.signature


def test_v0_artifact_roundtrips_through_capture_format(tmp_path):
    """Re-saving a legacy artifact writes the unified capture format,
    and the sniffing loader reads it back equal, field for field."""
    artifact = ReplayArtifact.load(
        os.path.join(REPLAY_DIR, "wsn-jump-atomic.json"))
    path = str(tmp_path / "wsn-v1.jsonl")
    artifact.write(path)
    with open(path, encoding="utf-8") as handle:
        first = handle.readline()
    assert '"record": "header"' in first.replace('":"', '": "') or \
        '"record":"header"' in first
    back = ReplayArtifact.load(path)
    assert back.case == artifact.case
    assert back.original_case == artifact.original_case
    assert back.violations == artifact.violations
    assert back.shrink == artifact.shrink
    assert back.outcome == artifact.outcome
    assert back.campaign == artifact.campaign
    assert back.requires_env == artifact.requires_env
    # the unified format makes fuzz artifacts checkable like any trace
    from repro.capture import verify_capture
    info = verify_capture(path)
    assert info["profile"] == "fuzz-replay" and info["events"] == 0


def test_v1_artifact_still_reproduces(monkeypatch, tmp_path):
    monkeypatch.delenv(INJECT_ENV, raising=False)
    artifact = ReplayArtifact.load(
        os.path.join(REPLAY_DIR, "wsn-jump-atomic.json"))
    path = str(tmp_path / "wsn-v1.jsonl")
    artifact.write(path)
    outcome = replay(ReplayArtifact.load(path))
    assert outcome.reproduced


def test_injected_fixture_tracks_its_environment(monkeypatch):
    artifact = ReplayArtifact.load(
        os.path.join(REPLAY_DIR, "injected-burst.json"))
    assert artifact.requires_env == {INJECT_ENV: "burst"}
    monkeypatch.delenv(INJECT_ENV, raising=False)
    clean = replay(artifact)
    assert not clean.reproduced and clean.outcome.ok
    assert clean.missing_env == [INJECT_ENV]
    monkeypatch.setenv(INJECT_ENV, "burst")
    hooked = replay(artifact)
    assert hooked.reproduced and not hooked.missing_env
