"""Tests of the self-stabilizing Byzantine KV store facade."""

import pytest

from repro.faults.byzantine import strategy_factory
from repro.faults.transient import TransientFaultInjector
from repro.kvstore.store import StabilizingKVStore, build_kv_store
from repro.registers.system import Cluster, ClusterConfig


def test_put_get_roundtrip():
    store = build_kv_store(seed=1)
    store.put_sync("c1", "k", 42)
    assert store.get_sync("c1", "k") == 42


def test_cross_client_visibility():
    store = build_kv_store(seed=2, client_count=3)
    store.put_sync("c1", "k", "hello")
    assert store.get_sync("c3", "k") == "hello"


def test_independent_keys():
    store = build_kv_store(seed=3)
    store.put_sync("c1", "a", 1)
    store.put_sync("c2", "b", 2)
    assert store.get_sync("c1", "b") == 2
    assert store.get_sync("c2", "a") == 1
    assert store.keys == ["a", "b"]


def test_overwrites_by_different_clients():
    store = build_kv_store(seed=4)
    store.put_sync("c1", "k", "first")
    store.put_sync("c2", "k", "second")
    assert store.get_sync("c1", "k") == "second"


def test_get_of_missing_key_returns_none():
    store = build_kv_store(seed=5)
    assert store.get_sync("c1", "nothing") is None


def test_unknown_client_rejected():
    store = build_kv_store(seed=6)
    with pytest.raises(KeyError):
        store.put("ghost", "k", 1)


def test_requires_at_least_one_client():
    cluster = Cluster(ClusterConfig(n=9, t=1, seed=0))
    with pytest.raises(ValueError):
        StabilizingKVStore(cluster, client_count=0)


def test_tolerates_byzantine_server():
    store = build_kv_store(seed=7)
    cluster = store.cluster
    cluster.make_byzantine(["s4"],
                           strategy_factory("random-garbage", cluster))
    store.put_sync("c1", "k", "safe")
    assert store.get_sync("c2", "k") == "safe"


def test_recovers_after_partial_corruption():
    store = build_kv_store(seed=8)
    store.put_sync("c1", "k", "before")
    injector = TransientFaultInjector.for_cluster(store.cluster)
    injector.corrupt_all(store.cluster.servers, fraction=0.3)
    store.put_sync("c1", "k", "after")
    assert store.get_sync("c2", "k") == "after"


def test_register_reuse_per_key():
    store = build_kv_store(seed=9)
    first = store.register_for("k")
    second = store.register_for("k")
    assert first is second


def test_async_handles():
    store = build_kv_store(seed=10)
    put = store.put("c1", "k", 1)
    store.cluster.run_ops([put])
    get = store.get("c2", "k")
    store.cluster.run_ops([get])
    assert get.result == 1
