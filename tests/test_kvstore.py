"""Tests of the self-stabilizing Byzantine KV store facade."""

import pytest

from repro.faults.byzantine import strategy_factory
from repro.faults.schedule import FaultTimeline
from repro.faults.transient import TransientFaultInjector
from repro.kvstore.store import StabilizingKVStore, build_kv_store
from repro.registers.system import Cluster, ClusterConfig


def test_put_get_roundtrip():
    store = build_kv_store(seed=1)
    store.put_sync("c1", "k", 42)
    assert store.get_sync("c1", "k") == 42


def test_cross_client_visibility():
    store = build_kv_store(seed=2, client_count=3)
    store.put_sync("c1", "k", "hello")
    assert store.get_sync("c3", "k") == "hello"


def test_independent_keys():
    store = build_kv_store(seed=3)
    store.put_sync("c1", "a", 1)
    store.put_sync("c2", "b", 2)
    assert store.get_sync("c1", "b") == 2
    assert store.get_sync("c2", "a") == 1
    assert store.keys == ["a", "b"]


def test_overwrites_by_different_clients():
    store = build_kv_store(seed=4)
    store.put_sync("c1", "k", "first")
    store.put_sync("c2", "k", "second")
    assert store.get_sync("c1", "k") == "second"


def test_get_of_missing_key_returns_none():
    store = build_kv_store(seed=5)
    assert store.get_sync("c1", "nothing") is None


def test_unknown_client_rejected():
    store = build_kv_store(seed=6)
    with pytest.raises(KeyError):
        store.put("ghost", "k", 1)


def test_requires_at_least_one_client():
    cluster = Cluster(ClusterConfig(n=9, t=1, seed=0))
    with pytest.raises(ValueError):
        StabilizingKVStore(cluster, client_count=0)


def test_tolerates_byzantine_server():
    store = build_kv_store(seed=7)
    cluster = store.cluster
    cluster.make_byzantine(["s4"],
                           strategy_factory("random-garbage", cluster))
    store.put_sync("c1", "k", "safe")
    assert store.get_sync("c2", "k") == "safe"


def test_recovers_after_partial_corruption():
    store = build_kv_store(seed=8)
    store.put_sync("c1", "k", "before")
    injector = TransientFaultInjector.for_cluster(store.cluster)
    injector.corrupt_all(store.cluster.servers, fraction=0.3)
    store.put_sync("c1", "k", "after")
    assert store.get_sync("c2", "k") == "after"


def test_register_reuse_per_key():
    store = build_kv_store(seed=9)
    first = store.register_for("k")
    second = store.register_for("k")
    assert first is second


def test_async_handles():
    store = build_kv_store(seed=10)
    put = store.put("c1", "k", 1)
    store.cluster.run_ops([put])
    get = store.get("c2", "k")
    store.cluster.run_ops([get])
    assert get.result == 1


class TestLazyKeyCreationDeterminism:
    """Keys materialize on first use; creation order must be a pure
    function of the operation program, never of dict/set iteration."""

    def test_same_program_same_execution(self):
        def run():
            store = build_kv_store(seed=20)
            for index in range(6):
                store.put_sync(f"c{index % 2 + 1}", f"k{index}", index)
            reads = [store.get_sync("c1", f"k{index}")
                     for index in range(6)]
            return (store.keys, reads, store.cluster.now,
                    store.cluster.network.messages_sent)

        assert run() == run()

    def test_creation_order_does_not_leak_into_other_keys(self):
        """Touching keys in different orders still yields the same
        per-key results (registers are independent automatons)."""
        forward = build_kv_store(seed=21)
        for index in range(4):
            forward.put_sync("c1", f"k{index}", index)
        backward = build_kv_store(seed=21)
        for index in reversed(range(4)):
            backward.put_sync("c1", f"k{index}", index)
        assert forward.keys == backward.keys
        for index in range(4):
            assert forward.get_sync("c2", f"k{index}") == \
                backward.get_sync("c2", f"k{index}") == index

    def test_get_creates_the_register_too(self):
        store = build_kv_store(seed=22)
        assert store.get_sync("c1", "never-written") is None
        assert store.keys == ["never-written"]


class TestMultiClientBurstInterleavings:
    """Multi-client put/get interleavings while a declarative burst
    timeline corrupts server state mid-run."""

    def test_interleaved_clients_survive_burst_timeline(self):
        store = build_kv_store(seed=23, client_count=3)
        cluster = store.cluster
        for index in range(3):
            store.put_sync(f"c{index + 1}", f"k{index}", f"v{index}")
        injector = TransientFaultInjector.for_cluster(cluster)
        timeline = (FaultTimeline()
                    .burst(cluster.now + 1.0, fraction=0.2,
                           targets="servers")
                    .burst(cluster.now + 2.0, fraction=0.2,
                           targets="servers"))
        timeline.install(cluster, injector)
        cluster.run(until=cluster.now + 3.0)
        assert injector.corruptions > 0
        # concurrent post-burst repair writes by all three clients
        handles = [store.put(f"c{index + 1}", f"k{index}",
                             f"repaired{index}")
                   for index in range(3)]
        cluster.run_ops(handles)
        # cross-client reads see the repaired values
        for index in range(3):
            reader = f"c{(index + 1) % 3 + 1}"
            assert store.get_sync(reader, f"k{index}") == \
                f"repaired{index}"

    def test_concurrent_same_key_writes_linearize(self):
        from repro.checkers.atomicity import check_linearizable
        from repro.checkers.history import History

        store = build_kv_store(seed=24, client_count=2)
        cluster = store.cluster
        store.put_sync("c1", "k", "w0")
        injector = TransientFaultInjector.for_cluster(cluster)
        injector.corrupt_all(cluster.servers, fraction=0.2)
        writes = [store.put("c1", "k", "w1"), store.put("c2", "k", "w2")]
        cluster.run_ops(writes)
        reads = [store.get("c1", "k"), store.get("c2", "k")]
        cluster.run_ops(reads)
        history = History.from_handles(writes + reads)
        assert check_linearizable(history, initial="w0").ok
        assert reads[0].result in ("w1", "w2")
        assert reads[0].result == reads[1].result
