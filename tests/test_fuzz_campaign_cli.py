"""Campaign fan-out, worker determinism, CLI exit codes, replay CLI."""

import json
import os

import pytest

from repro.fuzz.campaign import campaign_cases, campaign_spec, run_campaign
from repro.fuzz.cli import SMOKE_CASES, SMOKE_SEED, main
from repro.fuzz.harness import INJECT_ENV
from repro.fuzz.replay import ReplayArtifact, replay
from repro.runner.spec import expand


class TestCampaignSpec:
    def test_spec_expands_to_one_cell_per_case(self):
        spec = campaign_spec(5, 8)
        cells = expand(spec)
        assert len(cells) == 8
        assert all(cell.scenario == "fuzz" for cell in cells)

    def test_campaign_cases_lists_generated_cases(self):
        pairs = campaign_cases(5, 4)
        assert len(pairs) == 4
        spec = campaign_spec(5, 4)
        for (cell_id, case), cell in zip(pairs, spec.cells()):
            assert cell_id == cell.cell_id
            assert case.seed == cell.seed


class TestCampaignDeterminism:
    def test_serial_and_parallel_json_byte_identical(self):
        serial = run_campaign(5, 6, workers=1)
        parallel = run_campaign(5, 6, workers=2)
        assert serial.to_json() == parallel.to_json()
        assert serial.all_ok

    def test_failures_shrink_and_emit_artifacts(self, monkeypatch,
                                                tmp_path):
        monkeypatch.setenv(INJECT_ENV, "burst")
        result = run_campaign(7, 6, workers=1,
                              artifacts_dir=str(tmp_path))
        assert not result.all_ok
        assert result.failures
        for failure in result.failures:
            assert failure.confirmed_signature == ["injected:burst"]
            assert failure.artifact_name
            path = tmp_path / failure.artifact_name
            artifact = ReplayArtifact.load(str(path))
            assert artifact.requires_env == {INJECT_ENV: "burst"}
            assert len(artifact.case.timeline) <= \
                len(artifact.original_case.timeline)
            # the artifact reproduces while the hook env is set
            assert replay(artifact).reproduced

    def test_parent_side_crash_is_contained_as_failure(self, monkeypatch):
        """A generator/confirmation crash in the parent process must not

        kill the campaign — it becomes a failure record like any other.
        """
        import repro.fuzz.campaign as campaign_mod
        real = campaign_mod.generate_case

        def exploding(seed, profile):
            raise RuntimeError("boom")

        # make every cell 'fail' fast so phase 2 runs, then explode there
        monkeypatch.setenv(INJECT_ENV, "burst")
        monkeypatch.setattr(campaign_mod, "generate_case", exploding)
        result = campaign_mod.run_campaign(7, 6, workers=1)
        assert not result.all_ok
        for failure in result.failures:
            assert failure.confirmed_signature == ["error:RuntimeError"]
            assert "boom" in failure.error
        monkeypatch.setattr(campaign_mod, "generate_case", real)

    def test_injected_campaign_json_deterministic_across_workers(
            self, monkeypatch):
        monkeypatch.setenv(INJECT_ENV, "burst")
        serial = run_campaign(7, 6, workers=1)
        parallel = run_campaign(7, 6, workers=2)
        assert serial.to_json() == parallel.to_json()


class TestCli:
    def test_smoke_budget_is_fixed(self):
        assert SMOKE_SEED == 20260730
        assert SMOKE_CASES == 64

    def test_clean_campaign_exits_zero(self, tmp_path, capsys):
        out = tmp_path / "fuzz.json"
        assert main(["--seed", "5", "--cases", "4",
                     "--out", str(out)]) == 0
        document = json.loads(out.read_text())
        assert document["campaign"]["seed"] == 5
        assert len(document["cells"]) == 4
        assert document["failures"] == []

    def test_violations_exit_nonzero_and_write_artifacts(
            self, monkeypatch, tmp_path, capsys):
        monkeypatch.setenv(INJECT_ENV, "burst")
        art = tmp_path / "artifacts"
        assert main(["--seed", "7", "--cases", "6",
                     "--artifacts", str(art)]) == 1
        names = os.listdir(art)
        assert names and all(name.startswith("replay-") for name in names)
        assert "VIOLATION" in capsys.readouterr().out

    def test_dry_run_lists_cases(self, capsys):
        assert main(["--dry-run", "--seed", "5", "--cases", "3"]) == 0
        lines = [line for line in capsys.readouterr().out.splitlines()
                 if line.startswith("fuzz-5/")]
        assert len(lines) == 3

    def test_replay_expectations(self, monkeypatch, tmp_path, capsys):
        monkeypatch.setenv(INJECT_ENV, "burst")
        art = tmp_path / "artifacts"
        main(["--seed", "7", "--cases", "6", "--artifacts", str(art),
              "--quiet"])
        path = os.path.join(art, sorted(os.listdir(art))[0])
        # hook still set: the violation reproduces
        assert main(["--replay", path]) == 0
        capsys.readouterr()
        # hook removed: clean run; default expectation fails ...
        monkeypatch.delenv(INJECT_ENV)
        assert main(["--replay", path]) == 1
        assert "expects" in capsys.readouterr().out  # missing-env hint
        # ... and --expect clean passes.
        assert main(["--replay", path, "--expect", "clean"]) == 0

    def test_replay_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main(["--replay", str(bad)]) == 2

    def test_replay_rejects_malformed_case_fields(self, tmp_path, capsys):
        import copy
        with open("tests/replays/injected-burst.json",
                  encoding="utf-8") as handle:
            artifact = json.load(handle)
        broken = copy.deepcopy(artifact)
        del broken["case"]["seed"]
        bad = tmp_path / "broken.json"
        bad.write_text(json.dumps(broken))
        assert main(["--replay", str(bad)]) == 2
        assert "bad replay artifact" in capsys.readouterr().err

    def test_requires_some_input(self):
        with pytest.raises(SystemExit):
            main(["--cases", "not-a-number"])

    def test_shrink_budget_zero_records_unshrunk(self, monkeypatch,
                                                 tmp_path, capsys):
        monkeypatch.setenv(INJECT_ENV, "burst")
        art = tmp_path / "artifacts"
        assert main(["--seed", "7", "--cases", "6", "--shrink-budget",
                     "0", "--artifacts", str(art)]) == 1
        names = sorted(os.listdir(art))
        assert names
        artifact = ReplayArtifact.load(str(art / names[0]))
        # unshrunk: the artifact's case is the original case
        assert artifact.case == artifact.original_case
        assert artifact.shrink == {}
        assert replay(artifact).reproduced

    def test_smoke_rejects_explicit_seed_or_cases(self, capsys):
        with pytest.raises(SystemExit):
            main(["--smoke", "--seed", "42"])
        with pytest.raises(SystemExit):
            main(["--smoke", "--cases", "200"])
