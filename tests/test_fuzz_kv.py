"""Tests of the kv fuzz family: generator, harness, campaign, shrink."""

import json

import pytest

from repro.fuzz.campaign import campaign_cases, campaign_spec, run_campaign
from repro.fuzz.gen import (KV_MAX_BURST_FRACTION, FuzzCase, KVFuzzCase,
                            case_from_dict, generate_case, generate_kv_case)
from repro.fuzz.harness import INJECT_ENV, confirm_case, run_case
from repro.fuzz.shrink import shrink_case
from repro.runner.adapters import run_fuzz_cell
from repro.runner.spec import derive_seed


class TestGenerator:
    def test_pure_function_of_seed(self):
        for seed in range(10):
            assert generate_kv_case(seed) == generate_kv_case(seed)

    def test_round_trips_through_json(self):
        case = generate_kv_case(42)
        data = json.loads(json.dumps(case.to_dict()))
        assert data["family"] == "kv"
        assert case_from_dict(data) == case

    def test_case_from_dict_dispatches_both_families(self):
        assert isinstance(case_from_dict(generate_case(1).to_dict()),
                          FuzzCase)
        assert isinstance(case_from_dict(generate_kv_case(1).to_dict()),
                          KVFuzzCase)

    def test_envelope_stays_inside_the_guarantees(self):
        for seed in range(30):
            case = generate_kv_case(seed)
            assert case.n >= 8 * case.t + 1
            assert case.byzantine_count <= case.t
            for event in case.timeline:
                assert 0 <= event["shard"] < case.shard_count
                if event["kind"] == "burst":
                    assert event["args"]["targets"] == "servers"
                    assert event["args"]["fraction"] <= \
                        KV_MAX_BURST_FRACTION

    def test_generated_cases_pass_on_the_fast_path(self):
        for seed in range(12):
            outcome = run_case(generate_kv_case(seed), backend="null")
            assert outcome.ok, (seed, outcome.violations)

    def test_scenario_kwargs_group_events_per_shard(self):
        case = generate_kv_case(2)
        kwargs = case.scenario_kwargs()
        flattened = [event
                     for events in kwargs["fault_timelines"].values()
                     for event in events["events"]]
        assert len(flattened) == len(case.timeline)
        assert all("shard" not in event for event in flattened)


class TestHarness:
    def test_backend_agreement_digest_cross_check(self):
        case = generate_kv_case(3)
        fast = run_case(case, backend="null")
        full = confirm_case(case, fast)
        assert full.ok
        assert fast.history_digest == full.history_digest

    def test_injected_violation_flags_kv_cases(self, monkeypatch):
        case = generate_kv_case(5)
        if not any(event["kind"] == "burst" for event in case.timeline):
            pytest.skip("sampled case has no burst event")
        monkeypatch.setenv(INJECT_ENV, "burst")
        outcome = run_case(case, backend="null")
        assert not outcome.ok
        assert "injected:burst" in outcome.signature


class TestCampaign:
    def test_default_family_spec_is_unchanged(self):
        """The kv arm must not move the default family's golden seeds."""
        spec = campaign_spec(7, 4)
        assert spec.name == "fuzz-7"
        assert "family" not in spec.base
        base = {"profile": spec.base["profile"]}
        assert [cell.seed for cell in spec.cells()] == \
            [derive_seed("fuzz-7", "fuzz", base, replicate)
             for replicate in range(4)]

    def test_kv_spec_derives_its_own_seeds(self):
        spec = campaign_spec(7, 4, family="kv")
        assert spec.name == "fuzz-kv-7"
        assert spec.base["family"] == "kv"
        default = campaign_spec(7, 4)
        assert [cell.seed for cell in spec.cells()] != \
            [cell.seed for cell in default.cells()]

    def test_campaign_cases_generate_kv_cases(self):
        pairs = campaign_cases(7, 3, family="kv")
        assert len(pairs) == 3
        assert all(isinstance(case, KVFuzzCase) for _, case in pairs)

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            campaign_spec(7, 4, family="nope")

    def test_kv_campaign_deterministic_across_workers(self):
        serial = run_campaign(11, 6, workers=1, family="kv")
        parallel = run_campaign(11, 6, workers=2, family="kv")
        assert serial.to_json() == parallel.to_json()
        assert json.loads(serial.to_json())["campaign"]["family"] == "kv"

    def test_adapter_dispatches_on_family(self):
        spec = campaign_spec(9, 1, family="kv")
        cell = spec.cells()[0]
        verdicts, counters, _, digest = run_fuzz_cell(dict(cell.params,
                                                           seed=cell.seed))
        assert verdicts["ok"]
        assert counters["shards"] >= 1
        assert digest


class TestShrink:
    def test_injected_kv_failure_shrinks(self, monkeypatch):
        monkeypatch.setenv(INJECT_ENV, "burst")
        case = next(generate_kv_case(seed) for seed in range(50)
                    if any(event["kind"] == "burst"
                           for event in generate_kv_case(seed).timeline))
        failing = run_case(case, backend="null")
        assert not failing.ok
        result = shrink_case(case, known_failure=failing)
        assert result.events_after <= result.events_before
        # the shrunk case still fails the same way and is minimal-ish:
        # only burst events can carry the injected signature
        shrunk = run_case(result.case, backend="null")
        assert "injected:burst" in shrunk.signature
        assert all(event["kind"] == "burst"
                   for event in result.case.timeline)
