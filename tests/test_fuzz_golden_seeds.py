"""Cross-version golden seeds: the determinism keystone, pinned.

Every fuzz case seed is routed through the runner's hash-derived scheme
(``repro.runner.spec.derive_seed``: SHA-256 over spec name + params +
replicate, never ``hash()``), and case *contents* are sampled with
cross-version-stable Mersenne-Twister primitives only.  These tests pin
concrete values so any Python upgrade (the CI matrix spans 3.10-3.12) or
accidental change to the derivation breaks loudly instead of silently
reshuffling every campaign.
"""

import json
import os

from repro.fuzz.campaign import campaign_spec
from repro.fuzz.cli import SMOKE_CASES, SMOKE_SEED
from repro.fuzz.gen import generate_case
from repro.runner.spec import derive_seed

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

#: first six hash-derived case seeds of the CI smoke campaign.
SMOKE_GOLDEN_SEEDS = [3908153077, 422219815, 2619796866, 2004511552,
                      2559536705, 4137266381]

#: first four case seeds of campaign seed 7 (an arbitrary second pin).
SEED7_GOLDEN_SEEDS = [2385743048, 1759629421, 2667646187, 3456191074]


def test_derive_seed_is_pinned():
    assert derive_seed("golden", "fuzz", {"a": 1}, 0) == 454666238


def test_smoke_campaign_seeds_are_pinned():
    spec = campaign_spec(SMOKE_SEED, SMOKE_CASES)
    seeds = [cell.seed for cell in spec.cells()]
    assert seeds[:6] == SMOKE_GOLDEN_SEEDS
    # hash-derived seeds: all distinct, none accidentally sequential.
    assert len(set(seeds)) == len(seeds)


def test_secondary_campaign_seeds_are_pinned():
    spec = campaign_spec(7, 4)
    assert [cell.seed for cell in spec.cells()] == SEED7_GOLDEN_SEEDS


def test_case_seeds_route_through_hash_derivation():
    """The spec's replicate derivation *is* the case-seed scheme."""
    spec = campaign_spec(7, 4)
    base = {"profile": spec.base["profile"]}
    for replicate, cell in enumerate(spec.cells()):
        assert cell.seed == derive_seed("fuzz-7", "fuzz", base, replicate)


def test_generated_case_matches_golden_fixture():
    """Full sampled case == committed golden JSON (MT stability guard)."""
    with open(os.path.join(GOLDEN_DIR, "fuzz_case_smoke0.json"),
              encoding="utf-8") as handle:
        golden = json.load(handle)
    case = generate_case(SMOKE_GOLDEN_SEEDS[0])
    assert case.to_dict() == golden
