"""Differential replay of the golden capture corpus (tests/captures/).

One committed trace per scenario family (plus a fuzz-derived spec and a
service trace, exercised in test_capture_service.py).  Every trace must

* re-simulate to the identical ``history_digest`` and summary,
* re-check (streaming, no simulator) to the same verdicts,
* re-record **byte-identically** from its recorded spec — the format
  carries no wall-clock, so same spec + same seed = same bytes,

and structurally invalid inputs must fail with the typed errors the
format documents (truncation, corruption, wrong format).
"""

import filecmp
import json
import os

import pytest

from repro.capture import (CaptureFormatError, CorruptCaptureError,
                           ReplayMismatchError, TruncatedCaptureError,
                           load_capture, record_scenario, replay_capture,
                           verify_capture)
from repro.capture.cli import main as capture_main
from repro.fuzz.gen import generate_case

CAPTURE_DIR = os.path.join(os.path.dirname(__file__), "captures")

#: family -> the exact params its golden trace was recorded from.
GOLDEN = {
    "swsr": dict(seed=3, num_writes=2, num_reads=2,
                 corruption_times=[2.0]),
    "mwmr": dict(m=2, seed=3, ops_per_process=1),
    "partition": dict(seed=3, num_writes=2, num_reads=2),
    "mobile-byz": dict(seed=3, rotations=1, num_writes=2, num_reads=2),
    "kv": dict(shard_count=2, num_keys=2, rounds=1, seed=3,
               corruption_times=[2.0]),
    "reshard": dict(shard_count=2, num_keys=2, rounds=1, seed=3,
                    vnodes=4),
    "soak": dict(seed=3, num_writes=6, num_reads=6),
}

FAMILIES = sorted(GOLDEN)


def golden_path(name: str) -> str:
    return os.path.join(CAPTURE_DIR, f"{name}.jsonl")


def fuzz_derived_params() -> dict:
    """The fuzz.jsonl trace: a generated case rendered as a swsr spec."""
    return generate_case(5).scenario_kwargs()


def test_corpus_is_complete():
    names = {entry for entry in os.listdir(CAPTURE_DIR)
             if entry.endswith(".jsonl")}
    expected = {f"{family}.jsonl" for family in FAMILIES}
    expected |= {"fuzz.jsonl", "service.jsonl"}
    assert expected <= names


@pytest.mark.parametrize("family", FAMILIES)
def test_resimulate_reproduces(family):
    report = replay_capture(golden_path(family), mode="resimulate")
    assert report.ok and not report.mismatches
    assert report.history_digest == report.expected_digest


@pytest.mark.parametrize("family", FAMILIES)
def test_recheck_agrees_with_resimulate(family):
    path = golden_path(family)
    recheck = replay_capture(path, mode="recheck")
    assert recheck.ok and not recheck.mismatches
    resim = replay_capture(path, mode="resimulate")
    assert recheck.history_digest == resim.history_digest
    assert recheck.expected_digest == resim.expected_digest


@pytest.mark.parametrize("family", FAMILIES)
def test_rerecord_is_byte_identical(family, tmp_path):
    fresh = str(tmp_path / f"{family}.jsonl")
    record_scenario(family, fresh, **GOLDEN[family])
    assert filecmp.cmp(fresh, golden_path(family), shallow=False), \
        f"re-recording {family} changed the trace bytes"


def test_fuzz_derived_trace_replays_and_rerecords(tmp_path):
    path = golden_path("fuzz")
    assert replay_capture(path, mode="resimulate").ok
    assert replay_capture(path, mode="recheck").ok
    fresh = str(tmp_path / "fuzz.jsonl")
    record_scenario("swsr", fresh, **fuzz_derived_params())
    assert filecmp.cmp(fresh, path, shallow=False)


def test_kv_trace_replays_under_parallel_workers():
    """Replaying with a worker pool must land on the same digest."""
    report = replay_capture(golden_path("kv"), mode="resimulate",
                            workers=2)
    assert report.ok and not report.mismatches


def test_recheck_rejects_workers():
    with pytest.raises(ValueError):
        replay_capture(golden_path("kv"), mode="recheck", workers=2)


# -- typed failure modes ---------------------------------------------------

def _lines(path):
    with open(path, "r", encoding="utf-8") as handle:
        return handle.readlines()


def test_truncated_capture_raises(tmp_path):
    lines = _lines(golden_path("swsr"))
    bad = tmp_path / "truncated.jsonl"
    bad.write_text("".join(lines[:-1]), encoding="utf-8")
    with pytest.raises(TruncatedCaptureError):
        load_capture(str(bad))
    with pytest.raises(TruncatedCaptureError):
        replay_capture(str(bad))


def test_corrupted_event_raises(tmp_path):
    lines = _lines(golden_path("swsr"))
    event = json.loads(lines[1])
    assert event["record"] == "event"
    event["t"] = event["t"] + 0.0001     # silently nudge one stamp
    lines[1] = json.dumps(event, sort_keys=True,
                          separators=(",", ":")) + "\n"
    bad = tmp_path / "corrupt.jsonl"
    bad.write_text("".join(lines), encoding="utf-8")
    with pytest.raises(CorruptCaptureError):
        load_capture(str(bad))


def test_corrupted_footer_checksum_raises(tmp_path):
    lines = _lines(golden_path("swsr"))
    footer = json.loads(lines[-1])
    footer["sha256"] = ("0" * 64)
    lines[-1] = json.dumps(footer, sort_keys=True,
                           separators=(",", ":")) + "\n"
    bad = tmp_path / "badsum.jsonl"
    bad.write_text("".join(lines), encoding="utf-8")
    with pytest.raises(CorruptCaptureError):
        load_capture(str(bad))


def test_wrong_format_raises(tmp_path):
    bad = tmp_path / "wrong.jsonl"
    bad.write_text(json.dumps({"record": "header",
                               "format": "bogus/9"}) + "\n",
                   encoding="utf-8")
    with pytest.raises(CaptureFormatError):
        load_capture(str(bad))


def test_non_capture_file_raises(tmp_path):
    bad = tmp_path / "plain.json"
    bad.write_text('{"hello": "world"}\n', encoding="utf-8")
    with pytest.raises(CaptureFormatError):
        load_capture(str(bad))


def test_replay_mismatch_is_typed(tmp_path):
    """A sealed log whose footer lies about the digest must raise."""
    lines = _lines(golden_path("swsr"))
    # rebuild the capture with a tampered summary but a *valid* checksum:
    # strip the footer, re-seal via the sink's own machinery.
    import hashlib
    body = lines[:-1]
    footer = json.loads(lines[-1])
    footer["history_digest"] = "0" * 16
    footer["summary"]["history_digest"] = "0" * 16
    del footer["sha256"]
    sha = hashlib.sha256()
    for line in body:
        sha.update(line.encode("utf-8"))
    footer["sha256"] = sha.hexdigest()
    bad = tmp_path / "lying.jsonl"
    bad.write_text("".join(body) + json.dumps(
        footer, sort_keys=True, separators=(",", ":")) + "\n",
        encoding="utf-8")
    with pytest.raises(ReplayMismatchError):
        replay_capture(str(bad), mode="resimulate")
    report = replay_capture(str(bad), mode="resimulate", strict=False)
    assert not report.ok and report.mismatches


# -- the repro-capture CLI -------------------------------------------------

class TestCaptureCLI:

    def test_record_replay_check_tail(self, tmp_path, capsys):
        trace = str(tmp_path / "cli.jsonl")
        assert capture_main(["record", "--family", "swsr",
                             "--param", "seed=3",
                             "--param", "num_writes=2",
                             "--param", "num_reads=2",
                             "--out", trace]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["capture"] == trace

        report_path = str(tmp_path / "report.json")
        assert capture_main(["replay", trace, "--mode", "recheck",
                             "--out", report_path, "--quiet"]) == 0
        report = json.loads(open(report_path).read())
        assert report["ok"] and report["mode"] == "recheck"

        assert capture_main(["check", trace, "--quiet"]) == 0
        assert capture_main(["tail", trace, "-n", "1"]) == 0
        tail = capsys.readouterr().out.strip()
        assert json.loads(tail)["record"] == "footer"

    def test_replay_exits_nonzero_on_truncation(self, tmp_path, capsys):
        lines = _lines(golden_path("swsr"))
        bad = tmp_path / "trunc.jsonl"
        bad.write_text("".join(lines[:-1]), encoding="utf-8")
        assert capture_main(["replay", str(bad), "--quiet"]) == 1
        assert "TruncatedCaptureError" in capsys.readouterr().err
        assert capture_main(["check", str(bad), "--quiet"]) == 1

    def test_record_rejects_param_with_spec(self, tmp_path, capsys):
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps(
            {"family": "swsr", "params": GOLDEN["swsr"]}))
        assert capture_main(["record", "--spec", str(spec_file),
                             "--family", "swsr",
                             "--out", str(tmp_path / "x.jsonl")]) == 2

    def test_verify_reports_event_kinds(self):
        info = verify_capture(golden_path("swsr"))
        assert info["kinds"] == {"fault": 1, "op": 4}
        assert info["profile"] == "scenario"
        info = verify_capture(golden_path("reshard"))
        assert info["kinds"]["reshard"] == 1
