"""Unit tests for result reporting helpers."""

import pytest

from repro.analysis.summary import Stats, rate, summarize
from repro.analysis.tables import Table, series, verdict


class TestTable:
    def test_render_contains_all_cells(self):
        table = Table("demo", ["n", "t", "ok"])
        table.row(9, 1, True)
        table.row(17, 2, False)
        rendered = table.render()
        assert "demo" in rendered
        assert "9" in rendered and "17" in rendered
        assert "yes" in rendered and "no" in rendered

    def test_column_count_enforced(self):
        table = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.row(1)

    def test_float_formatting(self):
        table = Table("demo", ["x"])
        table.row(3.14159)
        assert "3.142" in table.render()

    def test_alignment_widths(self):
        table = Table("demo", ["col"])
        table.row("very-long-value")
        lines = table.render().splitlines()
        assert len(lines[1]) == len("very-long-value")


def test_series_rendering():
    assert series("lat", [1.0, 2.5]) == "lat: 1.000, 2.500"


def test_verdict():
    assert verdict(True) == "HOLDS"
    assert verdict(False) == "VIOLATED"
    assert verdict(False, bad="BROKEN") == "BROKEN"


class TestSummarize:
    def test_basic_stats(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert stats.count == 3
        assert stats.mean == 2.0
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0
        assert stats.stdev == 1.0

    def test_single_value(self):
        stats = summarize([5.0])
        assert stats.stdev == 0.0

    def test_empty_returns_none(self):
        assert summarize([]) is None


def test_rate():
    assert rate(1, 4) == 0.25
    assert rate(0, 0) == 0.0
