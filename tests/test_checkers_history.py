"""Unit tests for operation histories."""

import pytest

from repro.checkers.history import History, Operation
from repro.sim.process import OperationHandle


def test_add_and_query():
    history = History()
    history.add("write", "w", "a", 0.0, 1.0)
    history.add("read", "r", "a", 2.0, 3.0)
    assert len(history.writes()) == 1
    assert len(history.reads()) == 1


def test_precedence_and_overlap():
    first = Operation("write", "w", "a", 0.0, 1.0)
    second = Operation("read", "r", "a", 2.0, 3.0)
    overlapping = Operation("read", "r", "a", 0.5, 2.5)
    assert first.precedes(second)
    assert not second.precedes(first)
    assert first.overlaps(overlapping)
    assert overlapping.overlaps(second)


def test_writes_sorted_by_invocation():
    history = History()
    history.add("write", "w", "b", 5.0, 6.0)
    history.add("write", "w", "a", 1.0, 2.0)
    assert [op.value for op in history.writes()] == ["a", "b"]


def test_register_filter():
    history = History()
    history.add("write", "w", "a", 0.0, 1.0, register="x")
    history.add("write", "w", "b", 0.0, 1.0, register="y")
    assert [op.value for op in history.writes("x")] == ["a"]
    assert history.registers() == ["x", "y"]


def test_writers_listing():
    history = History()
    history.add("write", "p1", "a", 0.0, 1.0)
    history.add("write", "p2", "b", 2.0, 3.0)
    assert history.writers() == ["p1", "p2"]


def test_value_to_write_mapping():
    history = History()
    history.add("write", "w", "a", 0.0, 1.0)
    history.add("write", "w", "b", 2.0, 3.0)
    mapping = history.value_to_write()
    assert mapping["a"].invoke == 0.0
    assert mapping["b"].invoke == 2.0


def test_value_to_write_rejects_duplicates():
    history = History()
    history.add("write", "w", "same", 0.0, 1.0)
    history.add("write", "w", "same", 2.0, 3.0)
    with pytest.raises(ValueError):
        history.value_to_write()


def test_from_handles_skips_unfinished():
    done = OperationHandle("write", "w", 0.0)
    done.meta.update(kind="write", value="a", register="reg")
    done._complete(None, 1.0)
    pending = OperationHandle("write", "w", 2.0)
    pending.meta.update(kind="write", value="b", register="reg")
    history = History.from_handles([done, pending])
    assert len(history) == 1


def test_from_handles_read_value_is_result():
    handle = OperationHandle("read", "r", 0.0)
    handle.meta.update(kind="read", register="reg")
    handle._complete("seen", 1.0)
    history = History.from_handles([handle])
    assert history.reads()[0].value == "seen"


def test_non_register_handles_ignored():
    handle = OperationHandle("misc", "p", 0.0)
    handle._complete("x", 1.0)
    history = History.from_handles([handle])
    assert len(history) == 0


def test_op_ids_assigned_sequentially():
    history = History()
    a = history.add("write", "w", "a", 0.0, 1.0)
    b = history.add("read", "r", "a", 2.0, 3.0)
    assert (a.op_id, b.op_id) == (0, 1)


def test_format_is_chronological():
    history = History()
    history.add("read", "r", "b", 5.0, 6.0)
    history.add("write", "w", "a", 0.0, 1.0)
    lines = history.format().splitlines()
    assert "write" in lines[0]
    assert "read" in lines[1]
