"""Unit tests for workload generators, drivers and scenarios."""

import pytest

from repro.checkers.atomicity import check_linearizable
from repro.registers.system import Cluster, ClusterConfig, build_swsr_regular
from repro.workloads.generators import (ClientDriver, ValueStream,
                                        alternating_schedule, burst_schedule)
from repro.workloads.scenarios import run_mwmr_scenario, run_swsr_scenario


class TestValueStream:
    def test_unique_increasing_values(self):
        stream = ValueStream()
        assert [stream.next() for _ in range(3)] == ["w0", "w1", "w2"]
        assert stream.produced == 3

    def test_custom_prefix(self):
        stream = ValueStream(prefix="x")
        assert stream.next() == "x0"

    def test_values_are_interned(self):
        """Drawn values share one object with their interned equal."""
        import sys
        stream = ValueStream(prefix="payload-")
        for _ in range(5):
            value = stream.next()
            assert value is sys.intern(value)

    def test_interning_changes_no_values_or_digests(self):
        """Differential pin: values/digests match an uninterned stream.

        The fast path draws through ``sys.intern``; an equivalent plain
        f-string stream must produce equal values, and a seeded scenario
        (whose every written payload flows from ValueStream) must keep
        the exact ``history_digest`` the uninterned seed code produced.
        """
        stream = ValueStream(prefix="w")
        plain = [f"w{i}" for i in range(50)]
        drawn = [stream.next() for i in range(50)]
        assert drawn == plain

        first = run_swsr_scenario(seed=17, num_writes=3,
                                  num_reads=3).summarize()
        second = run_swsr_scenario(seed=17, num_writes=3,
                                   num_reads=3).summarize()
        assert first == second
        assert first.history_digest == second.history_digest


class TestSchedules:
    def test_alternating_default_offset_interleaves(self):
        writes, reads = alternating_schedule(10.0, 3, 4.0)
        assert writes == [10.0, 14.0, 18.0]
        assert reads == [12.0, 16.0, 20.0]

    def test_alternating_custom_offset(self):
        writes, reads = alternating_schedule(0.0, 2, 10.0, reader_offset=1.0)
        assert reads == [1.0, 11.0]

    def test_burst_schedule(self):
        writes, reads = burst_schedule(5.0, writes=3, reads=2,
                                       write_gap=1.0, read_gap=2.0)
        assert writes == [5.0, 6.0, 7.0]
        assert reads == [5.0, 7.0]


class TestClientDriver:
    def test_sequentializes_overlapping_requests(self):
        cluster = Cluster(ClusterConfig(n=9, t=1, seed=0))
        writer, reader = build_swsr_regular(cluster, initial="i")
        driver = ClientDriver(cluster.scheduler, writer)
        # both scheduled at the same instant: must run one after the other
        driver.at(1.0, lambda: writer.write("a"))
        driver.at(1.0, lambda: writer.write("b"))
        cluster.scheduler.run_until(lambda: driver.all_done,
                                    max_events=500_000)
        assert len(driver.handles) == 2
        assert driver.handles[0].response_time <= driver.handles[1].invoke_time

    def test_all_done_false_before_scheduling(self):
        cluster = Cluster(ClusterConfig(n=9, t=1, seed=0))
        writer, reader = build_swsr_regular(cluster, initial="i")
        driver = ClientDriver(cluster.scheduler, writer)
        driver.at(5.0, lambda: writer.write("later"))
        assert not driver.all_done

    def test_preserves_request_order(self):
        cluster = Cluster(ClusterConfig(n=9, t=1, seed=0))
        writer, reader = build_swsr_regular(cluster, initial="i")
        driver = ClientDriver(cluster.scheduler, writer)
        for value in ("a", "b", "c"):
            driver.at(1.0, lambda v=value: writer.write(v))
        cluster.scheduler.run_until(lambda: driver.all_done,
                                    max_events=500_000)
        metas = [handle.meta["value"] for handle in driver.handles]
        assert metas == ["a", "b", "c"]


class TestScenarios:
    def test_swsr_scenario_reports(self):
        result = run_swsr_scenario(num_writes=2, num_reads=2, seed=1)
        assert result.completed
        assert result.report is not None
        assert result.messages_sent > 0
        assert len(result.history.writes()) == 2
        assert len(result.history.reads()) == 2

    def test_swsr_scenario_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            run_swsr_scenario(kind="bogus")

    def test_swsr_scenario_explicit_byzantine_map(self):
        result = run_swsr_scenario(seed=2, num_writes=2, num_reads=2,
                                   byzantine={"s3": "silent",
                                              "s7": "stale"})
        assert result.completed
        assert result.cluster.byzantine_ids == ["s3", "s7"]

    def test_mwmr_scenario_histories_linearize(self):
        result = run_mwmr_scenario(m=2, seed=3, ops_per_process=1)
        assert result.completed
        assert check_linearizable(result.history).ok

    def test_scenario_workload_starts_after_corruption(self):
        result = run_swsr_scenario(seed=4, num_writes=2, num_reads=2,
                                   corruption_times=(5.0,))
        assert result.tau_no_tr == 5.0
        first_op = min(op.invoke for op in result.history)
        assert first_op > 5.0

    def test_scenario_deterministic_per_seed(self):
        a = run_swsr_scenario(seed=9, num_writes=2, num_reads=2)
        b = run_swsr_scenario(seed=9, num_writes=2, num_reads=2)
        assert a.history.format() == b.history.format()
        assert a.messages_sent == b.messages_sent
