"""Loopback client/server behaviour: semantics, determinism, errors, drain.

The loopback transport runs the real wire format through in-process
queues over the deterministic store simulation, so these tests pin the
full service stack without sockets.
"""

import asyncio
import threading

import pytest

from repro.service import (KVClient, KVService, ServiceError, ServiceServer,
                           ServiceUnavailableError, SyncKVClient,
                           run_loopback_load, serve_tcp)
from repro.service.protocol import (E_BAD_REQUEST, E_UNAVAILABLE, E_VERSION,
                                    PROTOCOL_VERSION, Request, Response)


def run(coroutine):
    return asyncio.run(coroutine)


def make_server(**kwargs):
    kwargs.setdefault("shard_count", 2)
    kwargs.setdefault("seed", 11)
    return ServiceServer(KVService(**kwargs))


class TestSemantics:
    def test_put_get_round_trip(self):
        async def main():
            server = make_server()
            async with KVClient.loopback(server) as client:
                await client.put("k", {"deep": [1, None]})
                value = await client.get("k")
            await server.shutdown()
            return value

        assert run(main()) == {"deep": [1, None]}

    def test_get_of_unwritten_key_is_none(self):
        async def main():
            server = make_server()
            async with KVClient.loopback(server) as client:
                value = await client.get("never-written")
            await server.shutdown()
            return value

        assert run(main()) is None

    def test_batch_results_in_entry_order(self):
        async def main():
            server = make_server()
            async with KVClient.loopback(server) as client:
                results = await client.batch([
                    ("put", "a", 1), ("put", "b", 2),
                    ("get", "a"), ("get", "b"), ("get", "c")])
            await server.shutdown()
            return results

        assert run(main()) == [None, None, 1, 2, None]

    def test_writes_visible_across_connections(self):
        async def main():
            server = make_server()
            async with KVClient.loopback(server) as first:
                await first.put("shared", "v1")
            async with KVClient.loopback(server) as second:
                value = await second.get("shared")
            await server.shutdown()
            return value

        assert run(main()) == "v1"

    def test_concurrent_requests_on_one_connection(self):
        async def main():
            server = make_server()
            async with KVClient.loopback(server) as client:
                await client.batch([("put", f"k{i}", i) for i in range(4)])
                values = await asyncio.gather(
                    *(client.get(f"k{i}") for i in range(4)))
            await server.shutdown()
            return values

        assert run(main()) == [0, 1, 2, 3]

    def test_stats_counts_operations(self):
        async def main():
            server = make_server()
            async with KVClient.loopback(server) as client:
                await client.put("k", 1)
                await client.get("k")
                stats = await client.stats()
            await server.shutdown()
            return stats

        stats = run(main())
        assert stats["writes"] == 1
        assert stats["reads"] == 1
        assert stats["ops"] == 2
        assert stats["protocol_version"] == PROTOCOL_VERSION
        assert stats["shards"] == 2
        assert len(stats["history_digest"]) == 16
        assert len(stats["response_digest"]) == 16


class TestErrors:
    def test_unknown_store_client_is_bad_request(self):
        async def main():
            server = make_server()
            async with KVClient.loopback(server) as client:
                with pytest.raises(ServiceError) as excinfo:
                    await client.get("k", client="not-a-client")
            await server.shutdown()
            return excinfo.value.code

        assert run(main()) == E_BAD_REQUEST

    def test_malformed_request_gets_error_response(self):
        async def main():
            server = make_server()
            transport = server.connect_loopback()
            await transport.send({"v": PROTOCOL_VERSION, "id": 5,
                                  "op": "GET"})          # key missing
            payload = await transport.receive()
            await transport.close()
            await server.shutdown()
            return Response.from_payload(payload)

        response = run(main())
        assert not response.ok
        assert response.error == E_BAD_REQUEST
        assert response.request_id == 5

    def test_version_mismatch_answered_then_disconnected(self):
        async def main():
            server = make_server()
            transport = server.connect_loopback()
            await transport.send({"v": 99, "id": 1, "op": "STATS"})
            payload = await transport.receive()
            eof = await transport.receive()
            await transport.close()
            await server.shutdown()
            return Response.from_payload(payload), eof

        response, eof = run(main())
        assert response.error == E_VERSION
        assert eof is None

    def test_request_after_bad_one_still_served(self):
        async def main():
            server = make_server()
            transport = server.connect_loopback()
            await transport.send({"v": PROTOCOL_VERSION, "id": 0,
                                  "op": "DELETE", "key": "k"})
            first = Response.from_payload(await transport.receive())
            await transport.send(Request.stats(1).to_payload())
            second = Response.from_payload(await transport.receive())
            await transport.close()
            await server.shutdown()
            return first, second

        first, second = run(main())
        assert not first.ok
        assert second.ok and second.stats is not None


class TestDrain:
    def test_drain_refuses_data_ops_but_answers_stats(self):
        async def main():
            server = make_server()
            client = KVClient.loopback(server)
            await client.connect()
            await client.put("k", 1)
            server.service.begin_drain()
            stats = await client.stats()
            with pytest.raises(ServiceError) as excinfo:
                await client.get("k")
            await client.close()
            await server.shutdown()
            return stats, excinfo.value.code

        stats, code = run(main())
        assert stats["draining"] is True
        assert code == E_UNAVAILABLE

    def test_persistent_unavailable_raises_typed_give_up(self):
        async def main():
            server = make_server()
            client = KVClient.loopback(server, max_retries=2,
                                       retry_delay=0)
            await client.connect()
            server.service.begin_drain()
            with pytest.raises(ServiceUnavailableError) as excinfo:
                await client.get("k")
            await client.close()
            await server.shutdown()
            return excinfo.value

        error = run(main())
        assert error.code == E_UNAVAILABLE
        assert error.attempts == 3          # initial try + max_retries
        assert isinstance(error, ServiceError)

    def test_retry_recovers_once_drain_lifts(self):
        async def main():
            server = make_server()
            client = KVClient.loopback(server, max_retries=5,
                                       retry_delay=0.01)
            await client.connect()
            await client.put("k", "survives")
            server.service.begin_drain()

            async def lift():
                await asyncio.sleep(0.02)
                server.service.end_drain()

            lifter = asyncio.ensure_future(lift())
            value = await client.get("k")   # retried through the blip
            await lifter
            await client.close()
            await server.shutdown()
            return value

        assert run(main()) == "survives"

    def test_drain_under_load_fails_only_with_unavailable(self):
        # concurrent writers racing a drain: every request either
        # completes normally or gives up with the typed unavailable
        # error — no other failure mode, and every acknowledged write
        # really is in the store.
        async def main():
            server = make_server()
            client = KVClient.loopback(server, max_retries=1,
                                       retry_delay=0)

            async def writer(index):
                if index == 8:
                    server.service.begin_drain()
                    return None
                return await client.batch([("put", f"k{index}", index),
                                           ("get", f"k{index}")])

            results = await asyncio.gather(
                *(writer(index) for index in range(16)),
                return_exceptions=True)
            server.service.end_drain()
            acknowledged = {index: outcome
                            for index, outcome in enumerate(results)
                            if index != 8
                            and not isinstance(outcome, Exception)}
            readback = {index: await client.get(f"k{index}")
                        for index in acknowledged}
            await client.close()
            await server.shutdown()
            return results, acknowledged, readback

        results, acknowledged, readback = run(main())
        failures = [outcome for outcome in results
                    if isinstance(outcome, Exception)]
        for failure in failures:
            assert isinstance(failure, ServiceUnavailableError)
            assert failure.code == E_UNAVAILABLE
        for index, outcome in acknowledged.items():
            assert outcome == [None, index]          # batch echoed the put
            assert readback[index] == index          # and it is durable

    def test_shutdown_is_idempotent(self):
        async def main():
            server = make_server()
            async with KVClient.loopback(server) as client:
                await client.put("k", 1)
            await server.shutdown()
            await server.shutdown()

        run(main())


class TestDeterminism:
    def test_same_seed_same_history_digest(self):
        first = run_loopback_load(clients=2, lanes=4, rounds=2,
                                  keys_per_lane=2, shards=2, seed=99)
        second = run_loopback_load(clients=2, lanes=4, rounds=2,
                                   keys_per_lane=2, shards=2, seed=99)
        assert first.mismatches == 0
        assert first.history_digest == second.history_digest
        assert first.response_digest == second.response_digest

    def test_different_seed_different_history_digest(self):
        first = run_loopback_load(clients=1, lanes=2, rounds=1,
                                  keys_per_lane=2, shards=2, seed=1)
        second = run_loopback_load(clients=1, lanes=2, rounds=1,
                                   keys_per_lane=2, shards=2, seed=2)
        assert first.history_digest != second.history_digest

    def test_response_digest_is_connection_count_independent(self):
        digests = {
            run_loopback_load(clients=clients, lanes=4, rounds=2,
                              keys_per_lane=2, shards=2,
                              seed=77).response_digest
            for clients in (1, 2, 4)}
        assert len(digests) == 1

    def test_load_report_counts(self):
        report = run_loopback_load(clients=2, lanes=4, rounds=3,
                                   keys_per_lane=2, shards=2, seed=5)
        assert report.requests == 4 * 3
        assert report.ops == 4 * 3 * 2 * 2
        assert report.mismatches == 0
        assert report.stats["ops"] == report.ops


class TestTcpAndSyncClient:
    def test_tcp_round_trip_async_client(self):
        async def main():
            server, host, port = await serve_tcp(
                KVService(shard_count=2, seed=4))
            async with KVClient.tcp(host, port) as client:
                await client.put("k", "tcp")
                value = await client.get("k")
            await server.shutdown()
            return value

        assert run(main()) == "tcp"

    def test_sync_wrapper_against_threaded_server(self):
        # SyncKVClient owns a private loop, so the server must run in a
        # loop of its own — a background thread, like a real deployment.
        ready = threading.Event()
        done = threading.Event()
        address = {}

        def serve():
            async def main():
                server, host, port = await serve_tcp(
                    KVService(shard_count=2, seed=4))
                address["addr"] = (host, port)
                ready.set()
                while not done.is_set():
                    await asyncio.sleep(0.01)
                await server.shutdown()

            asyncio.run(main())

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        try:
            assert ready.wait(10), "server never came up"
            host, port = address["addr"]
            with SyncKVClient.tcp(host, port) as client:
                client.put("k", "sync")
                assert client.get("k") == "sync"
                assert client.batch([("put", "k2", [1]),
                                     ("get", "k2")]) == [None, [1]]
                assert client.stats()["ops"] >= 3
        finally:
            done.set()
            thread.join(10)
        assert not thread.is_alive()
