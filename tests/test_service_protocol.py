"""Wire-protocol round trips, framing fuzz and version rejection."""

import random
import struct

import pytest

from repro.service.protocol import (ERROR_CODES, HEADER_BYTES,
                                    MAX_FRAME_BYTES, PROTOCOL_VERSION,
                                    E_BAD_REQUEST, E_FRAME, E_MALFORMED,
                                    E_UNKNOWN_OP, E_VERSION, BatchOp,
                                    FrameDecoder, ProtocolError, Request,
                                    Response, decode_payload, encode_frame,
                                    encode_payload)


class TestFrameRoundTrip:
    def test_single_frame_round_trip(self):
        payload = {"v": 1, "id": 3, "op": "GET", "key": "k"}
        [decoded] = FrameDecoder().feed(encode_frame(payload))
        assert decoded == payload

    def test_many_frames_in_one_chunk(self):
        payloads = [{"v": 1, "id": i, "op": "STATS"} for i in range(5)]
        chunk = b"".join(encode_frame(p) for p in payloads)
        assert FrameDecoder().feed(chunk) == payloads

    def test_byte_at_a_time_reassembly(self):
        payloads = [{"v": 1, "id": i, "op": "STATS"} for i in range(3)]
        stream = b"".join(encode_frame(p) for p in payloads)
        decoder, seen = FrameDecoder(), []
        for i in range(len(stream)):
            seen.extend(decoder.feed(stream[i:i + 1]))
        assert seen == payloads
        assert decoder.buffered == 0

    def test_random_chunking_is_equivalent(self):
        rng = random.Random(20260808)
        payloads = [{"v": 1, "id": i, "op": "PUT", "key": f"k{i}",
                     "value": ["x"] * (i % 7)} for i in range(40)]
        stream = b"".join(encode_frame(p) for p in payloads)
        for _ in range(20):
            decoder, seen, offset = FrameDecoder(), [], 0
            while offset < len(stream):
                step = rng.randint(1, 64)
                seen.extend(decoder.feed(stream[offset:offset + step]))
                offset += step
            assert seen == payloads

    def test_canonical_encoding_is_key_order_independent(self):
        a = encode_payload({"v": 1, "id": 0, "op": "STATS"})
        b = encode_payload({"op": "STATS", "id": 0, "v": 1})
        assert a == b


class TestFramingViolations:
    def test_oversize_length_prefix_poisons(self):
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError) as excinfo:
            decoder.feed(struct.pack("!I", MAX_FRAME_BYTES + 1))
        assert excinfo.value.code == E_FRAME
        with pytest.raises(ProtocolError):   # poisoned for good
            decoder.feed(b"")

    def test_garbage_body_is_typed_malformed(self):
        body = b"\xff\xfenot json"
        frame = struct.pack("!I", len(body)) + body
        with pytest.raises(ProtocolError) as excinfo:
            FrameDecoder().feed(frame)
        assert excinfo.value.code == E_MALFORMED

    def test_non_object_body_rejected(self):
        body = b"[1,2,3]"
        with pytest.raises(ProtocolError) as excinfo:
            FrameDecoder().feed(struct.pack("!I", len(body)) + body)
        assert excinfo.value.code == E_MALFORMED

    def test_unserializable_payload_rejected(self):
        with pytest.raises(ProtocolError) as excinfo:
            encode_payload({"v": 1, "bad": object()})
        assert excinfo.value.code == E_MALFORMED

    def test_oversize_payload_rejected_on_encode(self):
        with pytest.raises(ProtocolError) as excinfo:
            encode_payload({"v": 1, "blob": "x" * (MAX_FRAME_BYTES + 1)})
        assert excinfo.value.code == E_FRAME

    def test_fuzzed_garbage_never_escapes_typed_errors(self):
        rng = random.Random(7)
        for _ in range(200):
            blob = bytes(rng.randrange(256)
                         for _ in range(rng.randrange(0, 40)))
            decoder = FrameDecoder()
            try:
                for payload in decoder.feed(blob):
                    assert isinstance(payload, dict)
            except ProtocolError as exc:
                assert exc.code in ERROR_CODES

    def test_truncated_frame_stays_buffered(self):
        frame = encode_frame({"v": 1, "id": 0, "op": "STATS"})
        decoder = FrameDecoder()
        assert decoder.feed(frame[:-1]) == []
        assert decoder.buffered == len(frame) - 1


class TestRequestCodec:
    def test_all_builders_round_trip(self):
        requests = [
            Request.get(0, "k", client="c1"),
            Request.put(1, "k", {"nested": [1, None]}),
            Request.batch(2, [BatchOp("put", "a", 1), BatchOp("get", "a")],
                          client="c2"),
            Request.stats(3),
        ]
        for request in requests:
            assert Request.from_payload(request.to_payload()) == request

    def test_version_mismatch_rejected(self):
        payload = Request.stats(0).to_payload()
        payload["v"] = PROTOCOL_VERSION + 1
        with pytest.raises(ProtocolError) as excinfo:
            Request.from_payload(payload)
        assert excinfo.value.code == E_VERSION

    def test_missing_version_rejected(self):
        with pytest.raises(ProtocolError) as excinfo:
            Request.from_payload({"id": 0, "op": "STATS"})
        assert excinfo.value.code == E_VERSION

    @pytest.mark.parametrize("bad_id", [-1, "3", None, True, 1.5])
    def test_bad_request_id_rejected(self, bad_id):
        with pytest.raises(ProtocolError) as excinfo:
            Request.from_payload({"v": 1, "id": bad_id, "op": "STATS"})
        assert excinfo.value.code == E_BAD_REQUEST

    def test_unknown_op_rejected(self):
        with pytest.raises(ProtocolError) as excinfo:
            Request.from_payload({"v": 1, "id": 0, "op": "DELETE",
                                  "key": "k"})
        assert excinfo.value.code == E_UNKNOWN_OP

    @pytest.mark.parametrize("payload", [
        {"v": 1, "id": 0, "op": "GET"},                      # no key
        {"v": 1, "id": 0, "op": "GET", "key": ""},           # empty key
        {"v": 1, "id": 0, "op": "PUT", "key": "k"},          # no value
        {"v": 1, "id": 0, "op": "BATCH", "ops": []},         # empty batch
        {"v": 1, "id": 0, "op": "BATCH", "ops": "nope"},     # not a list
        {"v": 1, "id": 0, "op": "BATCH",
         "ops": [{"op": "put", "key": "k"}]},                # put sans value
        {"v": 1, "id": 0, "op": "GET", "key": "k",
         "client": 7},                                       # non-str client
    ])
    def test_field_validation(self, payload):
        with pytest.raises(ProtocolError) as excinfo:
            Request.from_payload(payload)
        assert excinfo.value.code == E_BAD_REQUEST

    def test_put_value_none_is_explicit(self):
        # "value": null is a legal value, distinct from a missing field.
        request = Request.from_payload({"v": 1, "id": 0, "op": "PUT",
                                        "key": "k", "value": None})
        assert request.value is None


class TestResponseCodec:
    def test_success_shapes_round_trip(self):
        responses = [
            Response.success(0, value="x"),
            Response.success(1, results=[None, "a", 3]),
            Response.success(2, stats={"ops": 7}),
        ]
        for response in responses:
            assert Response.from_payload(response.to_payload()) == response

    def test_failure_round_trip_and_raise(self):
        failure = Response.failure(9, E_BAD_REQUEST, "nope")
        decoded = Response.from_payload(failure.to_payload())
        assert decoded == failure
        with pytest.raises(ProtocolError) as excinfo:
            decoded.raise_for_error()
        assert excinfo.value.code == E_BAD_REQUEST

    def test_unknown_failure_code_rejected_at_build(self):
        with pytest.raises(ValueError):
            Response.failure(0, "E_NOPE", "x")

    def test_unknown_error_code_rejected_on_decode(self):
        with pytest.raises(ProtocolError) as excinfo:
            Response.from_payload({"v": 1, "id": 0, "ok": False,
                                   "error": "E_NOPE", "message": ""})
        assert excinfo.value.code == E_MALFORMED

    def test_version_mismatch_rejected(self):
        payload = Response.success(0, value=1).to_payload()
        payload["v"] = 99
        with pytest.raises(ProtocolError) as excinfo:
            Response.from_payload(payload)
        assert excinfo.value.code == E_VERSION

    def test_ok_must_be_boolean(self):
        with pytest.raises(ProtocolError) as excinfo:
            Response.from_payload({"v": 1, "id": 0, "ok": 1, "value": 2})
        assert excinfo.value.code == E_MALFORMED


def test_header_is_four_bytes_big_endian():
    frame = encode_frame({"v": 1, "id": 0, "op": "STATS"})
    assert HEADER_BYTES == 4
    assert int.from_bytes(frame[:4], "big") == len(frame) - 4


def test_decode_payload_matches_encode_payload():
    payload = {"v": 1, "id": 5, "op": "PUT", "key": "k",
               "value": {"deep": [1, 2, {"three": None}]}}
    assert decode_payload(encode_payload(payload)) == payload
