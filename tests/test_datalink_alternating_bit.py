"""Unit tests for the footnote-3 alternating-bit stabilizing data link."""

from repro.datalink.alternating_bit import (AlternatingBitReceiver,
                                            AlternatingBitSender)
from repro.datalink.bounded_link import BoundedCapacityLink
from repro.datalink.packets import AckPacket, DataPacket
from repro.sim.network import FixedDelay
from repro.sim.scheduler import Scheduler


def make_pair(cap=2, delay=0.05, retry=0.2):
    """A sender/receiver pair wired over bounded forward/ack channels."""
    scheduler = Scheduler()
    delivered = []
    sender_box = []
    ack_link = BoundedCapacityLink(
        scheduler, "b", "a", cap,
        deliver=lambda packet: sender_box[0].on_ack(packet)
        if isinstance(packet, AckPacket) else None,
        delay_model=FixedDelay(delay))
    receiver = AlternatingBitReceiver(ack_link, delivered.append)
    forward = BoundedCapacityLink(
        scheduler, "a", "b", cap,
        deliver=lambda packet: receiver.on_packet(packet)
        if isinstance(packet, DataPacket) else None,
        delay_model=FixedDelay(delay))
    sender = AlternatingBitSender(scheduler, forward, retry_interval=retry)
    sender_box.append(sender)
    return scheduler, sender, receiver, forward, ack_link, delivered


def test_single_message_delivered_exactly_once():
    scheduler, sender, receiver, *_rest, delivered = make_pair()
    done = []
    sender.enqueue("m1", on_complete=lambda: done.append(1))
    scheduler.run(until=50.0)
    assert delivered == ["m1"]
    assert done == [1]
    assert sender.idle


def test_fifo_stream_of_messages():
    scheduler, sender, receiver, *_rest, delivered = make_pair()
    for index in range(5):
        sender.enqueue(index)
    scheduler.run(until=200.0)
    assert delivered == list(range(5))
    assert sender.completed_sends == 5


def test_no_duplicate_delivery_despite_retransmissions():
    # Large retry pressure: retransmissions flood the channel, but the
    # 0 -> 1 bit edge delivers each body exactly once.
    scheduler, sender, receiver, *_rest, delivered = make_pair(retry=0.06)
    sender.enqueue("only")
    scheduler.run(until=100.0)
    assert delivered == ["only"]


def test_survives_initial_garbage_on_both_channels():
    scheduler, sender, receiver, forward, ack_link, delivered = make_pair()
    # arbitrary initial content (transient failures): stale data + acks
    forward.preload([DataPacket(1, "ghost"), DataPacket(0, "ghost2")])
    ack_link.preload([AckPacket(0), AckPacket(1)])
    sender.enqueue("real")
    scheduler.run(until=100.0)
    # Validity allows delivering initial-garbage bodies; the *real* message
    # must still arrive, exactly once, after the garbage drains.
    assert delivered.count("real") == 1
    assert delivered[-1] == "real"


def test_completion_needs_cap_plus_one_acks():
    scheduler, sender, receiver, *_rest, delivered = make_pair(cap=2)
    done = []
    sender.enqueue("m", on_complete=lambda: done.append(1))
    # after only a couple of events nothing has completed yet
    scheduler.run(until=0.06)
    assert done == []
    scheduler.run(until=100.0)
    assert done == [1]


def test_receiver_acks_every_data_packet():
    scheduler, sender, receiver, forward, ack_link, delivered = make_pair()
    sender.enqueue("m")
    scheduler.run(until=100.0)
    assert ack_link.offered >= 2 * (forward.cap + 1) - forward.dropped - 2


def test_stale_acks_of_other_bit_ignored():
    scheduler, sender, receiver, *_rest, delivered = make_pair(cap=3)
    sender.enqueue("m")
    # inject stale acks for bit 1 while sender is still in bit-0 phase
    sender.on_ack(AckPacket(1))
    sender.on_ack(AckPacket(1))
    scheduler.run(until=100.0)
    assert delivered == ["m"]


def test_ack_outside_any_send_is_ignored():
    scheduler, sender, receiver, *_rest, delivered = make_pair()
    sender.on_ack(AckPacket(0))  # no active send: must not crash
    assert sender.idle


def test_queueing_while_busy():
    scheduler, sender, receiver, *_rest, delivered = make_pair()
    sender.enqueue("first")
    sender.enqueue("second")  # queued behind the active send
    assert not sender.idle
    scheduler.run(until=200.0)
    assert delivered == ["first", "second"]


def test_retransmission_overcomes_channel_loss():
    # cap=1: most retransmissions are dropped, yet delivery succeeds.
    scheduler, sender, receiver, *_rest, delivered = make_pair(cap=1)
    sender.enqueue("tough")
    scheduler.run(until=500.0)
    assert delivered == ["tough"]
