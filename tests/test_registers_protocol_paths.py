"""Line-level protocol-path tests with hand-crafted reply quorums.

These drive the writer/reader coroutines against a fake transport whose
replies we inject directly, pinning down each branch of Figures 2 and 3:
the last-value return (lines 12-13), the helping-value return (lines
14-15), the loop re-entry (line 18), the writer's helping predicate (line
03), and the atomic reader's cache/adopt decisions (lines 13M2-13M4, N6).
"""

import pytest

from repro.datalink.packets import SSReply
from repro.registers.base import QuorumParams, RegisterClientProcess
from repro.registers.bounded_seq import WsnConfig
from repro.registers.messages import (BOT, AckRead, AckWrite, NewHelpVal,
                                      Read, Write)
from repro.registers.swsr_atomic import AtomicReaderRole, AtomicWriterRole
from repro.registers.swsr_regular import (RegularReaderRole,
                                          RegularWriterRole)
from repro.sim.scheduler import Scheduler
from repro.sim.trace import Trace


class FakeTransport:
    """Broadcasts complete instantly and record what was sent."""

    class _Handle:
        def __init__(self, phase):
            self.phase = phase

        def completed(self):
            return True

    def __init__(self):
        self.begun = []
        self._next_phase = 0

    def begin(self, payload):
        self._next_phase += 1
        self.begun.append(payload)
        return self._Handle(self._next_phase)

    def on_network_message(self, src, msg):
        return False

    def retire(self, phase):
        pass


class Harness:
    """A client process with a fake transport and reply injection."""

    def __init__(self):
        self.scheduler = Scheduler()
        self.trace = Trace()
        self.client = RegisterClientProcess("c", self.scheduler, self.trace)
        self.transport = FakeTransport()
        self.client.attach_transport(self.transport)
        self.params = QuorumParams(n=9, t=1)  # ack 8, value 3, help 5

    def start(self, generator, name="op"):
        return self.client.start_operation(name, generator)

    def current_phase(self):
        return self.transport._next_phase

    def inject(self, replies):
        """Deliver one reply per (server, payload) for the current phase."""
        phase = self.current_phase()
        for server, payload in replies:
            self.client.deliver(server, SSReply(phase, payload))

    def run(self):
        self.scheduler.run(max_events=10_000)


def acks_read(values):
    """[(server, AckRead)] from a list of (last_val, helping_val)."""
    return [(f"s{index + 1}", AckRead("reg", last, helping))
            for index, (last, helping) in enumerate(values)]


def acks_write(helping_values):
    return [(f"s{index + 1}", AckWrite("reg", helping))
            for index, helping in enumerate(helping_values)]


class TestRegularReaderPaths:
    def make_reader(self):
        harness = Harness()
        role = RegularReaderRole(harness.client, "reg", harness.params)
        return harness, role

    def test_line_12_last_value_quorum(self):
        harness, role = self.make_reader()
        handle = harness.start(role.read_gen())
        harness.run()
        harness.inject(acks_read([("v", BOT)] * 8))
        assert handle.done
        assert handle.result == "v"

    def test_lines_14_15_helping_value_return(self):
        """No last-value quorum, but 2t+1 equal helping values: return w."""
        harness, role = self.make_reader()
        handle = harness.start(role.read_gen())
        harness.run()
        # 8 distinct last values (no quorum); helping agrees on "help" x3
        rows = [(f"x{i}", "help" if i < 3 else BOT) for i in range(8)]
        harness.inject(acks_read(rows))
        assert handle.done
        assert handle.result == "help"

    def test_bot_helping_values_do_not_count(self):
        """Line 14 requires w != ⊥: an all-⊥ helping column loops."""
        harness, role = self.make_reader()
        handle = harness.start(role.read_gen())
        harness.run()
        rows = [(f"x{i}", BOT) for i in range(8)]
        harness.inject(acks_read(rows))
        assert not handle.done  # re-entered the loop (line 18)
        # the loop re-broadcast READ(false):
        assert isinstance(harness.transport.begun[-1], Read)
        assert harness.transport.begun[-1].new_read is False

    def test_loop_reentry_then_success(self):
        harness, role = self.make_reader()
        handle = harness.start(role.read_gen())
        harness.run()
        harness.inject(acks_read([(f"x{i}", BOT) for i in range(8)]))
        assert not handle.done
        harness.inject(acks_read([("settled", BOT)] * 8))
        assert handle.done
        assert handle.result == "settled"

    def test_first_broadcast_is_new_read(self):
        harness, role = self.make_reader()
        harness.start(role.read_gen())
        harness.run()
        first = harness.transport.begun[0]
        assert isinstance(first, Read)
        assert first.new_read is True

    def test_byzantine_garbage_replies_never_form_quorum(self):
        harness, role = self.make_reader()
        handle = harness.start(role.read_gen())
        harness.run()
        # 6 garbage (non-AckRead) replies + 2 honest: no quorum anywhere
        replies = [(f"s{i}", "not-an-ack") for i in range(6)]
        replies += [("s7", AckRead("reg", "v", BOT)),
                    ("s8", AckRead("reg", "v", BOT))]
        harness.inject(replies)
        assert not handle.done

    def test_wrong_register_replies_ignored_for_quorum(self):
        harness, role = self.make_reader()
        handle = harness.start(role.read_gen())
        harness.run()
        replies = [(f"s{i}", AckRead("other", "v", BOT)) for i in range(8)]
        harness.inject(replies)
        assert not handle.done


class TestRegularWriterPaths:
    def make_writer(self):
        harness = Harness()
        role = RegularWriterRole(harness.client, "reg", harness.params)
        return harness, role

    def test_line_03_false_skips_new_help_val(self):
        """4t+1 = 5 equal non-⊥ helping values: no NEW_HELP_VAL broadcast."""
        harness, role = self.make_writer()
        handle = harness.start(role.write_gen("v"))
        harness.run()
        harness.inject(acks_write(["w"] * 5 + [BOT] * 3))
        assert handle.done
        kinds = [type(p) for p in harness.transport.begun]
        assert kinds == [Write]

    def test_line_03_true_broadcasts_new_help_val(self):
        harness, role = self.make_writer()
        handle = harness.start(role.write_gen("v"))
        harness.run()
        harness.inject(acks_write([BOT] * 8))
        assert handle.done
        kinds = [type(p) for p in harness.transport.begun]
        assert kinds == [Write, NewHelpVal]
        assert harness.transport.begun[1].value == "v"

    def test_bot_never_counts_as_agreed_help(self):
        """Even 8 equal ⊥ values trigger the refresh (w != ⊥ required)."""
        harness, role = self.make_writer()
        handle = harness.start(role.write_gen("v"))
        harness.run()
        harness.inject(acks_write([BOT] * 8))
        assert any(isinstance(p, NewHelpVal)
                   for p in harness.transport.begun)

    def test_write_payload_carries_value(self):
        harness, role = self.make_writer()
        harness.start(role.write_gen("payload"))
        harness.run()
        assert harness.transport.begun[0] == Write("reg", "payload")


class TestAtomicReaderPaths:
    def make_reader(self, pwsn=0, pv=None, modulus=1000):
        harness = Harness()
        role = AtomicReaderRole(harness.client, "reg", harness.params,
                                WsnConfig(modulus), initial=pv)
        role.pwsn = pwsn
        role.pv = pv
        return harness, role

    def finish_sanity(self, harness, helping=BOT):
        """Answer the N2-N3 sanity broadcast (no helping quorum)."""
        harness.inject(acks_read([(f"junk{i}", helping) for i in range(8)]))

    def test_line_13m2_adopts_newer_pair(self):
        harness, role = self.make_reader(pwsn=1, pv="old")
        handle = harness.start(role.read_gen())
        harness.run()
        self.finish_sanity(harness)
        harness.inject(acks_read([((5, "new"), BOT)] * 8))
        assert handle.result == "new"
        assert role.pwsn == 5

    def test_line_13m3_returns_cached_on_stale_quorum(self):
        harness, role = self.make_reader(pwsn=9, pv="cached")
        handle = harness.start(role.read_gen())
        harness.run()
        self.finish_sanity(harness)
        harness.inject(acks_read([((5, "older"), BOT)] * 8))
        assert handle.result == "cached"
        assert role.pwsn == 9  # unchanged

    def test_line_15m_helping_return_is_adopted(self):
        harness, role = self.make_reader(pwsn=9, pv="cached")
        handle = harness.start(role.read_gen())
        harness.run()
        self.finish_sanity(harness)
        rows = [(f"junk{i}", (3, "helped") if i < 3 else BOT)
                for i in range(8)]
        harness.inject(acks_read(rows))
        assert handle.result == "helped"
        assert role.pwsn == 3  # line 15M overwrites unconditionally

    def test_line_n6_sanity_check_repairs_pwsn(self):
        """A helping quorum with a *smaller* wsn pulls a corrupted pwsn back."""
        harness, role = self.make_reader(pwsn=100, pv="corrupt")
        handle = harness.start(role.read_gen())
        harness.run()
        # sanity phase: 3 equal helping pairs at wsn 2; with modulus 1000,
        # 100 >_cd 2 (clockwise distance 2->100 is 98 < 902), so the
        # reader's pwsn raced ahead and must be pulled back (line N6)
        rows = [(f"junk{i}", (2, "real") if i < 3 else BOT)
                for i in range(8)]
        harness.inject(acks_read(rows))
        assert role.pwsn == 2
        assert role.pv == "real"
        # loop phase then confirms with a last-value quorum at wsn 2
        harness.inject(acks_read([((2, "real"), BOT)] * 8))
        assert handle.result == "real"

    def test_sanity_check_keeps_pwsn_when_servers_are_ahead(self):
        harness, role = self.make_reader(pwsn=1, pv="mine")
        handle = harness.start(role.read_gen())
        harness.run()
        rows = [(f"junk{i}", (4, "ahead") if i < 3 else BOT)
                for i in range(8)]
        harness.inject(acks_read(rows))
        assert role.pwsn == 1  # 4 >cd 1: servers ahead, N6 does not adopt
        harness.inject(acks_read([((4, "ahead"), BOT)] * 8))
        assert handle.result == "ahead"

    def test_malformed_pair_quorum_does_not_crash(self):
        """A corrupted-equal quorum of non-pairs loops instead of crashing."""
        harness, role = self.make_reader()
        handle = harness.start(role.read_gen())
        harness.run()
        self.finish_sanity(harness)
        harness.inject(acks_read([("not-a-pair", BOT)] * 8))
        assert not handle.done  # shape guard: keep looping


class TestAtomicWriterPaths:
    def test_line_n1_wsn_increment_and_pair_payload(self):
        harness = Harness()
        role = AtomicWriterRole(harness.client, "reg", harness.params,
                                WsnConfig(10))
        role.wsn = 8
        handle = harness.start(role.write_gen("v"))
        harness.run()
        assert harness.transport.begun[0] == Write("reg", (9, "v"))
        harness.inject(acks_write([BOT] * 8))
        assert handle.done
        # second write wraps the modulus
        handle = harness.start(role.write_gen("w"))
        harness.run()
        assert harness.transport.begun[-2] == Write("reg", (0, "w")) or \
            any(p == Write("reg", (0, "w")) for p in harness.transport.begun)

    def test_help_refresh_carries_the_pair(self):
        harness = Harness()
        role = AtomicWriterRole(harness.client, "reg", harness.params)
        handle = harness.start(role.write_gen("v"))
        harness.run()
        harness.inject(acks_write([BOT] * 8))
        refresh = [p for p in harness.transport.begun
                   if isinstance(p, NewHelpVal)]
        assert refresh and refresh[0].value == (1, "v")
