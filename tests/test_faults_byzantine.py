"""Unit tests for Byzantine strategies and mobile Byzantine control."""

import pytest

from repro.faults.byzantine import (CollusionCoordinator,
                                    FabricatedQuorumStrategy,
                                    MobileByzantineController,
                                    STRATEGY_FACTORIES, SilentStrategy,
                                    StaleReplyStrategy, strategy_factory)
from repro.faults.transient import TransientFaultInjector
from repro.registers.system import Cluster, ClusterConfig, build_swsr_regular


def make_cluster(n=9, t=1, seed=0):
    cluster = Cluster(ClusterConfig(n=n, t=t, seed=seed))
    writer, reader = build_swsr_regular(cluster, initial="v_init")
    return cluster, writer, reader


def run_op(cluster, handle, max_events=500_000):
    cluster.run_ops([handle], max_events=max_events)
    return handle.result


def test_all_named_strategies_resolvable():
    cluster, writer, reader = make_cluster()
    for name in STRATEGY_FACTORIES:
        factory = strategy_factory(name, cluster)
        strategy = factory(cluster.servers[0])
        assert hasattr(strategy, "on_deliver")


def test_unknown_strategy_rejected():
    cluster, writer, reader = make_cluster()
    with pytest.raises(ValueError):
        strategy_factory("nope", cluster)


def test_silent_strategy_suppresses_confirms():
    cluster, writer, reader = make_cluster()
    cluster.make_byzantine(["s1"], lambda server: SilentStrategy())
    assert not cluster.server("s1").confirm_enabled


def test_restoring_correctness_reenables_confirms():
    cluster, writer, reader = make_cluster()
    cluster.make_byzantine(["s1"], lambda server: SilentStrategy())
    cluster.make_byzantine(["s1"], None)
    assert cluster.server("s1").confirm_enabled
    assert cluster.byzantine_ids == []


def test_byzantine_ids_listing():
    cluster, writer, reader = make_cluster()
    cluster.make_byzantine(["s2", "s5"],
                           strategy_factory("stale", cluster))
    assert cluster.byzantine_ids == ["s2", "s5"]


def test_stale_strategy_serves_frozen_snapshot():
    cluster, writer, reader = make_cluster(seed=1)
    strategy = StaleReplyStrategy()
    cluster.make_byzantine(["s1"], lambda server: strategy)
    run_op(cluster, writer.write("fresh"))
    # the snapshot was taken at the pre-write state
    assert strategy._snapshot["reg"][0] == "v_init"


def test_fabricated_quorum_strategy_colludes():
    cluster, writer, reader = make_cluster(seed=2)
    coordinator = CollusionCoordinator(fabricated_value="evil")
    cluster.make_byzantine(
        ["s1"], lambda server: FabricatedQuorumStrategy(coordinator))
    # with t=1 the single liar cannot assemble a 2t+1 quorum:
    run_op(cluster, writer.write("good"))
    assert run_op(cluster, reader.read()) == "good"


def test_exceeding_t_in_mobile_controller_rejected():
    cluster, writer, reader = make_cluster()
    injector = TransientFaultInjector.for_cluster(cluster)
    with pytest.raises(ValueError):
        MobileByzantineController(
            cluster, injector, strategy_factory("silent", cluster),
            rotation=[["s1", "s2"]], times=[1.0])


def test_mobile_rotation_moves_byzantine_set():
    cluster, writer, reader = make_cluster(seed=3)
    injector = TransientFaultInjector.for_cluster(cluster)
    MobileByzantineController(
        cluster, injector, strategy_factory("silent", cluster),
        rotation=[["s1"], ["s2"]], times=[1.0, 2.0])
    cluster.run(until=1.5)
    assert cluster.byzantine_ids == ["s1"]
    cluster.run(until=2.5)
    assert cluster.byzantine_ids == ["s2"]


def test_mobile_recovery_corrupts_recovered_server():
    """A server leaving the Byzantine set re-joins with arbitrary state."""
    cluster, writer, reader = make_cluster(seed=4)
    injector = TransientFaultInjector.for_cluster(cluster)
    MobileByzantineController(
        cluster, injector, strategy_factory("silent", cluster),
        rotation=[["s1"], ["s2"]], times=[1.0, 2.0])
    cluster.run(until=2.5)
    assert injector.corruptions > 0  # s1's state was fuzzed on recovery


def test_register_survives_mobile_byzantine_rotation():
    cluster, writer, reader = make_cluster(seed=5)
    injector = TransientFaultInjector.for_cluster(cluster)
    MobileByzantineController(
        cluster, injector, strategy_factory("random-garbage", cluster),
        rotation=[["s1"], ["s3"], ["s7"]], times=[1.0, 30.0, 60.0])
    results = []
    cluster.run(until=5.0)
    run_op(cluster, writer.write("alpha"))
    results.append(run_op(cluster, reader.read()))
    cluster.run(until=65.0)
    run_op(cluster, writer.write("omega"))
    results.append(run_op(cluster, reader.read()))
    assert results == ["alpha", "omega"]


def test_rotation_times_length_mismatch_rejected():
    cluster, writer, reader = make_cluster()
    injector = TransientFaultInjector.for_cluster(cluster)
    with pytest.raises(ValueError):
        MobileByzantineController(
            cluster, injector, strategy_factory("silent", cluster),
            rotation=[["s1"]], times=[1.0, 2.0])
