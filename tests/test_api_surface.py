"""repro.api is the public surface: complete, importable, README-covering."""

import ast
import re
from pathlib import Path

import repro
import repro.api as api
import repro.service as service

README = Path(__file__).resolve().parent.parent / "README.md"


def test_every_name_in_all_is_importable():
    missing = [name for name in api.__all__ if not hasattr(api, name)]
    assert not missing, f"api.__all__ lists missing names: {missing}"


def test_all_is_sorted_within_sections_and_duplicate_free():
    assert len(api.__all__) == len(set(api.__all__))


def test_repro_reexports_the_api_surface():
    for name in api.__all__:
        assert getattr(repro, name) is getattr(api, name), name
    assert set(repro.__all__) == set(api.__all__) | {"__version__"}


def test_service_package_all_is_importable():
    missing = [name for name in service.__all__
               if not hasattr(service, name)]
    assert not missing


def _readme_python_blocks():
    text = README.read_text(encoding="utf-8")
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def _repro_imports(block):
    """(module, names) pairs for every ``from repro... import`` in block."""
    try:
        tree = ast.parse(block)
    except SyntaxError:
        # README blocks may elide with `...`-style prose; skip those —
        # the docs CI job runs the real doctests.
        return []
    pairs = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module \
                and node.module.split(".")[0] == "repro":
            pairs.append((node.module,
                          [alias.name for alias in node.names]))
    return pairs


def test_readme_examples_import_only_blessed_names():
    """Every README `from repro/repro.api import X` must be in api.__all__.

    Deeper submodule imports (repro.service, repro.workloads.spec, ...)
    only need to resolve; the flat-surface guarantee is for the two
    blessed spellings.
    """
    blocks = _readme_python_blocks()
    assert blocks, "README has no ```python examples to check"
    seen_imports = 0
    for block in blocks:
        for module, names in _repro_imports(block):
            seen_imports += 1
            if module in ("repro", "repro.api"):
                for name in names:
                    assert name in api.__all__, (
                        f"README imports {name!r} from {module} but "
                        f"repro.api.__all__ does not bless it")
            else:
                imported = __import__(module, fromlist=names)
                for name in names:
                    assert hasattr(imported, name), (
                        f"README imports {name!r} from {module} which "
                        f"does not provide it")
    assert seen_imports, "README examples never import from repro"


def test_version_is_exposed():
    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2
