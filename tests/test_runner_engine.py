"""Engine behaviour: fan-out determinism, failure containment, aggregation."""

import pickle

import pytest

from repro.runner import (CellResult, SweepSpec, execute_cell, run_sweep,
                          results_to_json)
from repro.runner.aggregate import aggregate, render_report


def _tiny_spec(**overrides):
    kwargs = dict(
        name="tiny", scenario="swsr",
        base={"n": 9, "t": 1, "num_writes": 2, "num_reads": 2},
        grid={"kind": ["regular", "atomic"]},
        seeds=[0])
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


class TestInlineExecution:
    def test_cells_complete_and_hold(self):
        sweep = run_sweep(_tiny_spec(), workers=1)
        assert len(sweep.cells) == 2
        assert sweep.all_ok
        for cell in sweep.cells:
            assert cell.verdicts["completed"]
            assert cell.counters["messages_sent"] > 0
            assert cell.counters["events_processed"] > 0
            assert cell.timings["sim_end"] > 0
            assert cell.history_digest

    def test_results_sorted_by_cell_id(self):
        sweep = run_sweep(_tiny_spec(), workers=1)
        ids = [cell.cell_id for cell in sweep.cells]
        assert ids == sorted(ids)

    def test_cell_results_are_picklable(self):
        sweep = run_sweep(_tiny_spec(), workers=1)
        for cell in sweep.cells:
            clone = pickle.loads(pickle.dumps(cell))
            assert clone.to_dict() == cell.to_dict()

    def test_mwmr_cells_report_linearizability(self):
        spec = SweepSpec(name="mw", scenario="mwmr",
                         base={"n": 9, "t": 1, "ops_per_process": 1},
                         grid={"m": [2]}, seeds=[0])
        (cell,) = run_sweep(spec, workers=1).cells
        assert cell.verdicts["linearizable"]
        assert cell.ok

    def test_figure1_cells_encode_paper_expectation(self):
        spec = SweepSpec(name="f1", scenario="figure1",
                         grid={"kind": ["regular", "atomic"]}, seeds=None)
        regular, atomic = run_sweep(spec, workers=1).cells
        assert regular.verdicts["inverted"] and regular.ok
        assert not atomic.verdicts["inverted"] and atomic.ok


class TestDeterminismUnderParallelism:
    def test_workers_1_and_4_produce_byte_identical_json(self):
        spec = SweepSpec(
            name="det", scenario="swsr",
            base={"n": 9, "t": 1, "num_writes": 2, "num_reads": 2,
                  "byzantine_count": 1},
            grid={"kind": ["regular", "atomic"],
                  "corruption_times": [[], [2.0]]},
            seeds=[0])
        serial = run_sweep(spec, workers=1)
        parallel = run_sweep(spec, workers=4)
        assert serial.to_json() == parallel.to_json()
        assert results_to_json(serial.cells) == \
            results_to_json(parallel.cells)

    def test_history_digests_match_across_worker_counts(self):
        spec = _tiny_spec(name="dig")
        serial = run_sweep(spec, workers=1)
        parallel = run_sweep(spec, workers=2)
        assert [c.history_digest for c in serial.cells] == \
            [c.history_digest for c in parallel.cells]


class TestFailurePaths:
    def test_budget_exhaustion_is_data_not_error(self):
        """``Scheduler.run_until`` budget exhaustion surfaces as
        ``completed=False`` on the cell, without poisoning the sweep."""
        spec = SweepSpec(
            name="budget", scenario="swsr",
            base={"n": 9, "t": 1, "num_writes": 2, "num_reads": 2,
                  "max_events": 50},
            grid={"kind": ["regular"]}, seeds=[0])
        (cell,) = run_sweep(spec, workers=1).cells
        assert cell.error is None
        assert not cell.verdicts["completed"]
        assert not cell.ok

    def test_resilience_violation_is_contained_as_error(self):
        spec = SweepSpec(
            name="bad", scenario="swsr",
            base={"n": 9, "t": 3, "num_writes": 1, "num_reads": 1},
            grid={"kind": ["regular", "atomic"]}, seeds=[0])
        sweep = run_sweep(spec, workers=1)
        assert len(sweep.failures()) == 2
        for cell in sweep.failures():
            assert "resilience" in cell.error.lower() \
                or "ValueError" in cell.error

    def test_errors_do_not_stop_other_cells(self):
        specs = [
            SweepSpec(name="bad", scenario="swsr",
                      base={"n": 9, "t": 3}, grid={"kind": ["regular"]},
                      seeds=[0]),
            _tiny_spec(),
        ]
        sweep = run_sweep(specs, workers=1)
        assert len(sweep.failures()) == 1
        assert sum(1 for cell in sweep.cells if cell.ok) == 2

    def test_error_cells_serialize(self):
        spec = SweepSpec(name="bad", scenario="swsr", base={"n": 9, "t": 3},
                         grid={"kind": ["regular"]}, seeds=[0])
        sweep = run_sweep(spec, workers=1)
        reloaded = CellResult.from_dict(sweep.cells[0].to_dict())
        assert reloaded.error is not None


class TestAggregation:
    def test_aggregate_counts_by_scenario(self):
        sweep = run_sweep(_tiny_spec(), workers=1)
        rollup = aggregate(sweep.cells)
        assert rollup["swsr"]["cells"] == 2
        assert rollup["swsr"]["ok"] == 2
        assert rollup["swsr"]["ok_rate"] == 1.0
        assert rollup["swsr"]["messages_sent"]["count"] == 2

    def test_render_report_uses_tables(self):
        sweep = run_sweep(_tiny_spec(), workers=1)
        text = render_report(sweep)
        assert "sweep [swsr]" in text
        assert "HOLDS" in text

    def test_to_json_excludes_wall_clock(self):
        sweep = run_sweep(_tiny_spec(), workers=1)
        assert sweep.wall_seconds > 0
        assert "wall" not in sweep.to_json()

    def test_max_cells_truncates(self):
        sweep = run_sweep(_tiny_spec(seeds=[0, 1, 2]), workers=1,
                          max_cells=2)
        assert len(sweep.cells) == 2


def test_execute_cell_matches_run_sweep_cell():
    spec = _tiny_spec(name="direct")
    cell = spec.cells()[0]
    direct = execute_cell(cell)
    via_sweep = run_sweep(spec, workers=1).cells[0]
    assert direct.to_dict() == via_sweep.to_dict()
