"""Behavioural tests of the practically atomic SWSR register (Figure 3)."""

import pytest

from repro.checkers.atomicity import find_new_old_inversions
from repro.faults.byzantine import strategy_factory
from repro.faults.transient import TransientFaultInjector
from repro.registers.bounded_seq import WsnConfig
from repro.registers.system import Cluster, ClusterConfig, build_swsr_atomic
from repro.workloads.scenarios import run_swsr_scenario


def make_system(n=9, t=1, seed=0, modulus=None, **kwargs):
    cluster = Cluster(ClusterConfig(n=n, t=t, seed=seed, **kwargs))
    config = WsnConfig(modulus) if modulus else None
    writer, reader = build_swsr_atomic(cluster, initial="v_init",
                                       config=config)
    return cluster, writer, reader


def run_op(cluster, handle, max_events=500_000):
    cluster.run_ops([handle], max_events=max_events)
    return handle.result


class TestBasicOperation:
    def test_write_then_read(self):
        cluster, writer, reader = make_system()
        run_op(cluster, writer.write("pear"))
        assert run_op(cluster, reader.read()) == "pear"

    def test_values_carry_increasing_wsn(self):
        cluster, writer, reader = make_system()
        run_op(cluster, writer.write("a"))
        run_op(cluster, writer.write("b"))
        cluster.run()
        pairs = {server.automatons["reg"].last_val
                 for server in cluster.servers}
        assert pairs == {(2, "b")}

    def test_initial_read(self):
        cluster, writer, reader = make_system()
        assert run_op(cluster, reader.read()) == "v_init"

    def test_reader_tracks_pwsn(self):
        cluster, writer, reader = make_system()
        run_op(cluster, writer.write("x"))
        run_op(cluster, reader.read())
        assert reader.role.pwsn == 1

    def test_stale_quorum_returns_cached_pv(self):
        """Line 13M3: an older quorum value is swapped for the cached one."""
        cluster, writer, reader = make_system()
        run_op(cluster, writer.write("new"))
        run_op(cluster, reader.read())
        # force the reader's notion of the latest pair forward
        reader.role.pwsn = 5
        reader.role.pv = "future"
        assert run_op(cluster, reader.read()) == "future"


class TestSanityCheck:
    def test_corrupted_pwsn_recovered_from_servers(self):
        """Lines N2-N7: a reader whose pwsn raced ahead adopts the servers'

        agreed helping pair instead of serving its corrupt cache forever."""
        cluster, writer, reader = make_system(seed=7)
        run_op(cluster, writer.write("truth"))
        reader.role.pwsn = 4_000  # corrupted way ahead (> real wsn=1)
        reader.role.pv = "corrupt"
        assert run_op(cluster, reader.read()) == "truth"
        assert reader.role.pwsn == 1

    def test_corrupted_pv_alone_recovered(self):
        cluster, writer, reader = make_system(seed=8)
        run_op(cluster, writer.write("truth"))
        run_op(cluster, reader.read())
        reader.role.pv = "corrupt"
        # pwsn is correct, so the next quorum (same wsn) returns cached pv —
        # corrupted output is allowed only until the next write.
        run_op(cluster, writer.write("truth2"))
        assert run_op(cluster, reader.read()) == "truth2"


class TestNoInversion:
    def test_no_inversion_under_inversion_attack(self):
        result = run_swsr_scenario(kind="atomic", n=9, t=1, seed=51,
                                   num_writes=6, num_reads=6,
                                   reader_offset=0.2,
                                   byzantine_count=1,
                                   byzantine_strategy="inversion-attack")
        assert result.completed
        inversions = find_new_old_inversions(result.history,
                                             after=result.tau_no_tr)
        assert inversions == []

    def test_no_inversion_under_flip_flop(self):
        result = run_swsr_scenario(kind="atomic", n=9, t=1, seed=52,
                                   num_writes=6, num_reads=6,
                                   reader_offset=0.2,
                                   byzantine_count=1,
                                   byzantine_strategy="flip-flop")
        assert result.completed
        assert find_new_old_inversions(result.history,
                                       after=result.tau_no_tr) == []

    @pytest.mark.parametrize("seed", [61, 62, 63])
    def test_eventual_atomicity_after_corruption(self, seed):
        result = run_swsr_scenario(kind="atomic", n=9, t=1, seed=seed,
                                   num_writes=5, num_reads=5,
                                   corruption_times=(2.0, 5.0),
                                   link_garbage=1, byzantine_count=1)
        assert result.completed
        assert result.report.stable


class TestBoundedSequenceNumbers:
    def test_wsn_wraps_at_modulus(self):
        cluster, writer, reader = make_system(modulus=5)
        for index in range(7):
            run_op(cluster, writer.write(f"v{index}"))
        assert writer.role.wsn == 7 % 5

    def test_reads_correct_across_wraparound(self):
        """Wrap-around is invisible while writes-between-reads stay under

        the system life span (Lemma 13)."""
        cluster, writer, reader = make_system(modulus=7)
        for index in range(10):
            run_op(cluster, writer.write(f"v{index}"))
            assert run_op(cluster, reader.read()) == f"v{index}"

    def test_life_span_exceeded_returns_stale_cache(self):
        """The 'practically' caveat: more than modulus/2 writes between two

        reads can make the newer quorum look older (>_cd wraps), so the
        reader serves its stale cache — exactly the failure Lemma 13
        excludes only below the system life span."""
        cluster, writer, reader = make_system(modulus=7, seed=77)
        run_op(cluster, writer.write("early"))
        run_op(cluster, reader.read())  # pwsn = 1
        # 4 > 7//2 writes: wsn travels more than half the circle
        for index in range(4):
            run_op(cluster, writer.write(f"mid{index}"))
        result = run_op(cluster, reader.read())
        assert result == "early"  # stale: wrap-around fooled >_cd

    def test_huge_default_modulus_never_wraps_in_practice(self):
        cluster, writer, reader = make_system()
        for index in range(5):
            run_op(cluster, writer.write(index))
        assert writer.role.wsn == 5


class TestByzantineTolerance:
    @pytest.mark.parametrize("strategy", ["silent", "random-garbage",
                                          "stale", "equivocate"])
    def test_single_byzantine(self, strategy):
        cluster, writer, reader = make_system(seed=81)
        cluster.make_byzantine(["s3"], strategy_factory(strategy, cluster))
        run_op(cluster, writer.write("ok"))
        assert run_op(cluster, reader.read()) == "ok"

    def test_corruption_plus_byzantine(self):
        cluster, writer, reader = make_system(seed=82)
        cluster.make_byzantine(["s1"],
                               strategy_factory("random-garbage", cluster))
        injector = TransientFaultInjector.for_cluster(cluster)
        injector.corrupt_all(cluster.servers + [writer, reader])
        run_op(cluster, writer.write("recovered"))
        assert run_op(cluster, reader.read()) == "recovered"
