"""Unit tests for the virtual-time event scheduler."""

import pytest

from repro.sim.errors import SchedulerError, SimulationLimitReached
from repro.sim.scheduler import Scheduler


def test_starts_at_time_zero():
    assert Scheduler().now == 0.0


def test_schedule_and_run_single_event():
    sched = Scheduler()
    fired = []
    sched.schedule(2.5, fired.append, "a")
    sched.run()
    assert fired == ["a"]
    assert sched.now == 2.5


def test_events_run_in_time_order():
    sched = Scheduler()
    fired = []
    sched.schedule(3.0, fired.append, "late")
    sched.schedule(1.0, fired.append, "early")
    sched.schedule(2.0, fired.append, "middle")
    sched.run()
    assert fired == ["early", "middle", "late"]


def test_simultaneous_events_run_in_schedule_order():
    sched = Scheduler()
    fired = []
    for label in ("first", "second", "third"):
        sched.schedule(1.0, fired.append, label)
    sched.run()
    assert fired == ["first", "second", "third"]


def test_schedule_at_absolute_time():
    sched = Scheduler()
    fired = []
    sched.schedule_at(4.0, fired.append, "x")
    sched.run()
    assert sched.now == 4.0
    assert fired == ["x"]


def test_negative_delay_rejected():
    with pytest.raises(SchedulerError):
        Scheduler().schedule(-1.0, lambda: None)


def test_scheduling_in_the_past_rejected():
    sched = Scheduler()
    sched.schedule(5.0, lambda: None)
    sched.run()
    with pytest.raises(SchedulerError):
        sched.schedule_at(1.0, lambda: None)


def test_cancelled_event_does_not_fire():
    sched = Scheduler()
    fired = []
    handle = sched.schedule(1.0, fired.append, "nope")
    handle.cancel()
    sched.run()
    assert fired == []


def test_cancel_is_idempotent_and_safe_after_fire():
    sched = Scheduler()
    handle = sched.schedule(1.0, lambda: None)
    sched.run()
    handle.cancel()  # no error
    assert handle.fired


def test_events_can_schedule_more_events():
    sched = Scheduler()
    fired = []

    def chain(depth):
        fired.append(depth)
        if depth < 3:
            sched.schedule(1.0, chain, depth + 1)

    sched.schedule(1.0, chain, 0)
    sched.run()
    assert fired == [0, 1, 2, 3]
    assert sched.now == 4.0


def test_run_until_time_stops_early():
    sched = Scheduler()
    fired = []
    sched.schedule(1.0, fired.append, "a")
    sched.schedule(10.0, fired.append, "b")
    sched.run(until=5.0)
    assert fired == ["a"]
    assert sched.now == 5.0
    sched.run()
    assert fired == ["a", "b"]


def test_run_event_budget_raises():
    sched = Scheduler()
    for _ in range(10):
        sched.schedule(1.0, lambda: None)
    with pytest.raises(SimulationLimitReached):
        sched.run(max_events=5)


def test_run_until_predicate():
    sched = Scheduler()
    counter = []
    for _ in range(10):
        sched.schedule(1.0, counter.append, 1)
    sched.run_until(lambda: len(counter) >= 4)
    assert len(counter) == 4


def test_run_until_predicate_already_true_is_noop():
    sched = Scheduler()
    sched.schedule(1.0, lambda: None)
    sched.run_until(lambda: True)
    assert sched.events_processed == 0


def test_run_until_raises_when_queue_drains():
    sched = Scheduler()
    sched.schedule(1.0, lambda: None)
    with pytest.raises(SimulationLimitReached):
        sched.run_until(lambda: False)


def test_run_until_raises_on_budget():
    sched = Scheduler()

    def reschedule():
        sched.schedule(1.0, reschedule)

    sched.schedule(1.0, reschedule)
    with pytest.raises(SimulationLimitReached):
        sched.run_until(lambda: False, max_events=50)


def test_peek_time_skips_cancelled():
    sched = Scheduler()
    handle = sched.schedule(1.0, lambda: None)
    sched.schedule(2.0, lambda: None)
    handle.cancel()
    assert sched.peek_time() == 2.0


def test_pending_count_excludes_cancelled():
    sched = Scheduler()
    keep = sched.schedule(1.0, lambda: None)
    drop = sched.schedule(2.0, lambda: None)
    drop.cancel()
    assert sched.pending_count() == 1
    assert keep.time == 1.0


def test_events_processed_counter():
    sched = Scheduler()
    for _ in range(7):
        sched.schedule(1.0, lambda: None)
    sched.run()
    assert sched.events_processed == 7


def test_empty_run_returns_immediately():
    sched = Scheduler()
    sched.run()
    assert sched.now == 0.0


# ----------------------------------------------------------------------
# fused delivery events and O(1) pending bookkeeping
# ----------------------------------------------------------------------
def test_schedule_delivery_requires_bound_callback():
    sched = Scheduler()
    with pytest.raises(SchedulerError):
        sched.schedule_delivery(1.0, "a", "b", "msg")


def test_fused_and_generic_events_share_total_order():
    sched = Scheduler()
    fired = []
    sched.bind_delivery(lambda src, dst, msg: fired.append(("dlv", src, dst,
                                                            msg)))
    # same virtual time: insertion order (seq) must decide
    sched.schedule_at(1.0, lambda: fired.append(("cb", 1)))
    sched.schedule_delivery(1.0, "a", "b", "m1")
    sched.schedule_at(1.0, lambda: fired.append(("cb", 2)))
    sched.schedule_delivery(0.5, "a", "b", "m0")
    sched.run()
    assert fired == [("dlv", "a", "b", "m0"), ("cb", 1),
                     ("dlv", "a", "b", "m1"), ("cb", 2)]
    assert sched.events_processed == 4


def test_fused_deliveries_count_as_pending():
    sched = Scheduler()
    sched.bind_delivery(lambda src, dst, msg: None)
    sched.schedule_delivery(1.0, "a", "b", "m")
    sched.schedule(2.0, lambda: None)
    assert sched.pending_count() == 2
    sched.run()
    assert sched.pending_count() == 0


def test_pending_count_is_live_through_cancel_and_fire():
    sched = Scheduler()
    handles = [sched.schedule(float(i + 1), lambda: None) for i in range(5)]
    assert sched.pending_count() == 5
    handles[2].cancel()
    handles[2].cancel()  # double-cancel must not double-decrement
    assert sched.pending_count() == 4
    sched.run(until=2.5)
    assert sched.pending_count() == 2


def test_cancel_after_fire_is_a_noop():
    sched = Scheduler()
    handle = sched.schedule(1.0, lambda: None)
    sched.run()
    handle.cancel()
    assert sched.pending_count() == 0


def test_schedule_delivery_rejects_past():
    sched = Scheduler()
    sched.bind_delivery(lambda src, dst, msg: None)
    sched.schedule(1.0, lambda: None)
    sched.run()
    with pytest.raises(SchedulerError):
        sched.schedule_delivery(0.5, "a", "b", "m")


# ----------------------------------------------------------------------
# same-tick batch drain: run() must stay byte-identical to step()
# ----------------------------------------------------------------------
def _build_soup(sched, log, rng_seed):
    """Load a randomized event soup onto ``sched``, logging every firing.

    The soup exercises everything the batched drain could get wrong:
    long runs of equal timestamps, fused deliveries interleaved with
    generic handles, callbacks that schedule more events *at the current
    tick* (they must join the run in seq order), callbacks that cancel
    not-yet-fired handles, and pre-cancelled entries sitting at the heap
    head.  Identical seeds build identical soups, so two schedulers can
    be driven by different loops and compared event-for-event.
    """
    import random
    rng = random.Random(rng_seed)
    sched.bind_delivery(lambda src, dst, msg: log.append(
        ("dlv", sched.now, src, dst, msg)))
    # a handful of coarse ticks so same-time runs are long
    ticks = sorted(rng.choice([1.0, 1.0, 2.0, 3.0]) for _ in range(40))
    cancellable = []

    def spawn(tag, depth):
        log.append(("cb", sched.now, tag, depth))
        roll = rng.random()  # same rng stream on both schedulers
        if depth < 2 and roll < 0.45:
            # same-tick child: must execute inside the current run
            sched.schedule(0.0, spawn, f"{tag}.s", depth + 1)
        elif depth < 2 and roll < 0.7:
            sched.schedule(1.0, spawn, f"{tag}.f", depth + 1)
        if roll > 0.8 and cancellable:
            cancellable.pop().cancel()

    for index, tick in enumerate(ticks):
        kind = rng.random()
        if kind < 0.4:
            sched.schedule_delivery(tick, "a", "b", f"m{index}")
        elif kind < 0.8:
            sched.schedule_at(tick, spawn, f"e{index}", 0)
        else:
            cancellable.append(
                sched.schedule_at(tick, log.append, ("plain", tick, index)))
    # a pre-cancelled entry at the very head of the heap
    sched.schedule_at(0.5, log.append, ("never", 0.5)).cancel()


def _reference_run(sched, until=None, max_events=None):
    """The unbatched one-``step``-per-event loop ``run()`` replaced."""
    budget = max_events
    while True:
        next_time = sched.peek_time()
        if next_time is None:
            return
        if until is not None and next_time > until:
            sched.now = until
            return
        if budget is not None:
            if budget <= 0:
                raise SimulationLimitReached(
                    f"event budget exhausted at t={sched.now}",
                    sched.events_processed, sched.now)
            budget -= 1
        sched.step()


@pytest.mark.parametrize("seed", range(8))
def test_batched_run_matches_unbatched_reference(seed):
    batched_log, reference_log = [], []
    batched, reference = Scheduler(), Scheduler()
    _build_soup(batched, batched_log, seed)
    _build_soup(reference, reference_log, seed)
    batched.run()
    _reference_run(reference)
    assert batched_log == reference_log
    assert batched.now == reference.now
    assert batched.events_processed == reference.events_processed
    assert batched.pending_count() == reference.pending_count() == 0


@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("until,max_events", [(2.0, None), (None, 13),
                                              (2.0, 13), (None, 1)])
def test_batched_run_matches_reference_under_limits(seed, until, max_events):
    batched_log, reference_log = [], []
    batched, reference = Scheduler(), Scheduler()
    _build_soup(batched, batched_log, seed)
    _build_soup(reference, reference_log, seed)
    outcomes = []
    for sched, log, runner in ((batched, batched_log, None),
                               (reference, reference_log, _reference_run)):
        try:
            if runner is None:
                sched.run(until=until, max_events=max_events)
            else:
                runner(sched, until=until, max_events=max_events)
            outcomes.append(("ok",))
        except SimulationLimitReached as exc:
            outcomes.append(("limit", exc.events_processed, exc.now))
    assert outcomes[0] == outcomes[1]
    assert batched_log == reference_log
    assert batched.now == reference.now
    assert batched.events_processed == reference.events_processed
    assert batched.pending_count() == reference.pending_count()


# ----------------------------------------------------------------------
# calendar kernel vs the single-heap reference kernel
# ----------------------------------------------------------------------
def _build_far_soup(sched, log, rng_seed):
    """Randomized schedule/cancel/drain soup spanning the calendar horizon.

    Unlike ``_build_soup`` (clustered near-future ticks), this soup
    deliberately scatters events *far* beyond the default calendar span
    (256 buckets x 0.5 = 128 time units) so entries land in the overflow
    heap and every ``run`` crosses several calendar rebuilds.  Callbacks
    keep scheduling both near (same-tick) and far children, and cancel
    random pending handles, so redistribution must cope with cancelled
    entries and late same-tick joins.
    """
    import random
    rng = random.Random(rng_seed)
    sched.bind_delivery(lambda src, dst, msg: log.append(
        ("dlv", sched.now, src, dst, msg)))
    cancellable = []

    def spawn(tag, depth):
        log.append(("cb", sched.now, tag, depth))
        roll = rng.random()
        if depth < 2:
            if roll < 0.3:
                sched.schedule(0.0, spawn, f"{tag}.s", depth + 1)
            elif roll < 0.5:
                # far child: lands in the overflow heap relative to the
                # calendar position at spawn time
                sched.schedule(150.0 + 75.0 * depth, spawn, f"{tag}.F",
                               depth + 1)
            elif roll < 0.7:
                sched.schedule(1.5, spawn, f"{tag}.n", depth + 1)
        if roll > 0.85 and cancellable:
            cancellable.pop().cancel()

    for index in range(60):
        time = rng.choice([0.25, 1.0, 5.0, 127.9, 128.0, 130.0, 250.0,
                           400.0, 1000.0, 5000.0])
        kind = rng.random()
        if kind < 0.4:
            sched.schedule_delivery(time, "a", "b", f"m{index}")
        elif kind < 0.8:
            sched.schedule_at(time, spawn, f"e{index}", 0)
        else:
            cancellable.append(
                sched.schedule_at(time, log.append,
                                  ("plain", time, index)))
    # pre-cancelled entries both near the head and in the far overflow
    sched.schedule_at(0.1, log.append, ("never-near", 0.1)).cancel()
    sched.schedule_at(999.0, log.append, ("never-far", 999.0)).cancel()


@pytest.mark.parametrize("seed", range(8))
def test_calendar_kernel_matches_heap_kernel(seed):
    from repro.sim.scheduler import HeapScheduler
    calendar_log, heap_log = [], []
    calendar, heap = Scheduler(), HeapScheduler()
    _build_far_soup(calendar, calendar_log, seed)
    _build_far_soup(heap, heap_log, seed)
    calendar.run()
    heap.run()
    assert calendar_log == heap_log
    assert calendar.now == heap.now
    assert calendar.events_processed == heap.events_processed
    assert calendar.pending_count() == heap.pending_count() == 0


@pytest.mark.parametrize("seed", range(4))
def test_calendar_matches_heap_under_interleaved_drains(seed):
    """Partial drains interleaved with more scheduling, across kernels.

    Exercises the calendar's realign-on-empty path (draining completely,
    then scheduling from the new ``now``) and overflow redistribution
    mid-run, against the heap reference.
    """
    from repro.sim.scheduler import HeapScheduler
    import random
    calendar_log, heap_log = [], []
    schedulers = [(Scheduler(), calendar_log), (HeapScheduler(), heap_log)]
    for sched, log in schedulers:
        _build_far_soup(sched, log, seed)
        rng = random.Random(1000 + seed)
        for round_index in range(6):
            try:
                sched.run(max_events=rng.randrange(5, 40))
            except SimulationLimitReached:
                pass
            # keep scheduling from wherever the clock stopped
            base = sched.now
            for extra in range(4):
                offset = rng.choice([0.0, 0.3, 2.0, 140.0, 600.0])
                sched.schedule_at(base + offset, log.append,
                                  ("late", round_index, extra))
        sched.run()
    assert calendar_log == heap_log
    assert schedulers[0][0].now == schedulers[1][0].now
    assert schedulers[0][0].events_processed == \
        schedulers[1][0].events_processed


def test_far_future_events_use_overflow_and_still_fire_in_order():
    sched = Scheduler()
    fired = []
    # beyond the 128-unit horizon: must land in the overflow heap
    sched.schedule_at(5000.0, fired.append, "way-out")
    sched.schedule_at(129.0, fired.append, "just-out")
    sched.schedule_at(1.0, fired.append, "near")
    assert len(sched._far) == 2
    sched.run()
    assert fired == ["near", "just-out", "way-out"]
    assert sched.now == 5000.0


def test_run_until_matches_across_kernels():
    from repro.sim.scheduler import HeapScheduler
    results = []
    for factory in (Scheduler, HeapScheduler):
        sched = factory()
        log = []
        _build_far_soup(sched, log, 3)
        sched.run_until(lambda: sched.events_processed >= 25,
                        max_events=1000)
        results.append((sched.now, sched.events_processed, log))
    assert results[0] == results[1]


def test_build_scheduler_selects_kernel(monkeypatch):
    import repro.sim.scheduler as scheduler_module
    from repro.sim.scheduler import HeapScheduler, build_scheduler
    assert type(build_scheduler("calendar")) is Scheduler
    assert type(build_scheduler("heap")) is HeapScheduler
    with pytest.raises(SchedulerError):
        build_scheduler("splay")
    monkeypatch.setattr(scheduler_module, "DEFAULT_KERNEL", "heap")
    assert type(build_scheduler()) is HeapScheduler
    monkeypatch.setattr(scheduler_module, "DEFAULT_KERNEL", "calendar")
    assert type(build_scheduler()) is Scheduler


def test_invalid_calendar_shape_rejected():
    with pytest.raises(SchedulerError):
        Scheduler(bucket_width=0.0)
    with pytest.raises(SchedulerError):
        Scheduler(bucket_count=1)


def test_narrow_calendar_rebuilds_repeatedly():
    """A tiny calendar (4 buckets) forces a rebuild every few events."""
    sched = Scheduler(bucket_width=0.5, bucket_count=4)
    fired = []
    for index in range(50):
        sched.schedule_at(index * 1.7, fired.append, index)
    sched.run()
    assert fired == list(range(50))
    assert sched.now == 49 * 1.7
