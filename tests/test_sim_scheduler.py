"""Unit tests for the virtual-time event scheduler."""

import pytest

from repro.sim.errors import SchedulerError, SimulationLimitReached
from repro.sim.scheduler import Scheduler


def test_starts_at_time_zero():
    assert Scheduler().now == 0.0


def test_schedule_and_run_single_event():
    sched = Scheduler()
    fired = []
    sched.schedule(2.5, fired.append, "a")
    sched.run()
    assert fired == ["a"]
    assert sched.now == 2.5


def test_events_run_in_time_order():
    sched = Scheduler()
    fired = []
    sched.schedule(3.0, fired.append, "late")
    sched.schedule(1.0, fired.append, "early")
    sched.schedule(2.0, fired.append, "middle")
    sched.run()
    assert fired == ["early", "middle", "late"]


def test_simultaneous_events_run_in_schedule_order():
    sched = Scheduler()
    fired = []
    for label in ("first", "second", "third"):
        sched.schedule(1.0, fired.append, label)
    sched.run()
    assert fired == ["first", "second", "third"]


def test_schedule_at_absolute_time():
    sched = Scheduler()
    fired = []
    sched.schedule_at(4.0, fired.append, "x")
    sched.run()
    assert sched.now == 4.0
    assert fired == ["x"]


def test_negative_delay_rejected():
    with pytest.raises(SchedulerError):
        Scheduler().schedule(-1.0, lambda: None)


def test_scheduling_in_the_past_rejected():
    sched = Scheduler()
    sched.schedule(5.0, lambda: None)
    sched.run()
    with pytest.raises(SchedulerError):
        sched.schedule_at(1.0, lambda: None)


def test_cancelled_event_does_not_fire():
    sched = Scheduler()
    fired = []
    handle = sched.schedule(1.0, fired.append, "nope")
    handle.cancel()
    sched.run()
    assert fired == []


def test_cancel_is_idempotent_and_safe_after_fire():
    sched = Scheduler()
    handle = sched.schedule(1.0, lambda: None)
    sched.run()
    handle.cancel()  # no error
    assert handle.fired


def test_events_can_schedule_more_events():
    sched = Scheduler()
    fired = []

    def chain(depth):
        fired.append(depth)
        if depth < 3:
            sched.schedule(1.0, chain, depth + 1)

    sched.schedule(1.0, chain, 0)
    sched.run()
    assert fired == [0, 1, 2, 3]
    assert sched.now == 4.0


def test_run_until_time_stops_early():
    sched = Scheduler()
    fired = []
    sched.schedule(1.0, fired.append, "a")
    sched.schedule(10.0, fired.append, "b")
    sched.run(until=5.0)
    assert fired == ["a"]
    assert sched.now == 5.0
    sched.run()
    assert fired == ["a", "b"]


def test_run_event_budget_raises():
    sched = Scheduler()
    for _ in range(10):
        sched.schedule(1.0, lambda: None)
    with pytest.raises(SimulationLimitReached):
        sched.run(max_events=5)


def test_run_until_predicate():
    sched = Scheduler()
    counter = []
    for _ in range(10):
        sched.schedule(1.0, counter.append, 1)
    sched.run_until(lambda: len(counter) >= 4)
    assert len(counter) == 4


def test_run_until_predicate_already_true_is_noop():
    sched = Scheduler()
    sched.schedule(1.0, lambda: None)
    sched.run_until(lambda: True)
    assert sched.events_processed == 0


def test_run_until_raises_when_queue_drains():
    sched = Scheduler()
    sched.schedule(1.0, lambda: None)
    with pytest.raises(SimulationLimitReached):
        sched.run_until(lambda: False)


def test_run_until_raises_on_budget():
    sched = Scheduler()

    def reschedule():
        sched.schedule(1.0, reschedule)

    sched.schedule(1.0, reschedule)
    with pytest.raises(SimulationLimitReached):
        sched.run_until(lambda: False, max_events=50)


def test_peek_time_skips_cancelled():
    sched = Scheduler()
    handle = sched.schedule(1.0, lambda: None)
    sched.schedule(2.0, lambda: None)
    handle.cancel()
    assert sched.peek_time() == 2.0


def test_pending_count_excludes_cancelled():
    sched = Scheduler()
    keep = sched.schedule(1.0, lambda: None)
    drop = sched.schedule(2.0, lambda: None)
    drop.cancel()
    assert sched.pending_count() == 1
    assert keep.time == 1.0


def test_events_processed_counter():
    sched = Scheduler()
    for _ in range(7):
        sched.schedule(1.0, lambda: None)
    sched.run()
    assert sched.events_processed == 7


def test_empty_run_returns_immediately():
    sched = Scheduler()
    sched.run()
    assert sched.now == 0.0


# ----------------------------------------------------------------------
# fused delivery events and O(1) pending bookkeeping
# ----------------------------------------------------------------------
def test_schedule_delivery_requires_bound_callback():
    sched = Scheduler()
    with pytest.raises(SchedulerError):
        sched.schedule_delivery(1.0, "a", "b", "msg")


def test_fused_and_generic_events_share_total_order():
    sched = Scheduler()
    fired = []
    sched.bind_delivery(lambda src, dst, msg: fired.append(("dlv", src, dst,
                                                            msg)))
    # same virtual time: insertion order (seq) must decide
    sched.schedule_at(1.0, lambda: fired.append(("cb", 1)))
    sched.schedule_delivery(1.0, "a", "b", "m1")
    sched.schedule_at(1.0, lambda: fired.append(("cb", 2)))
    sched.schedule_delivery(0.5, "a", "b", "m0")
    sched.run()
    assert fired == [("dlv", "a", "b", "m0"), ("cb", 1),
                     ("dlv", "a", "b", "m1"), ("cb", 2)]
    assert sched.events_processed == 4


def test_fused_deliveries_count_as_pending():
    sched = Scheduler()
    sched.bind_delivery(lambda src, dst, msg: None)
    sched.schedule_delivery(1.0, "a", "b", "m")
    sched.schedule(2.0, lambda: None)
    assert sched.pending_count() == 2
    sched.run()
    assert sched.pending_count() == 0


def test_pending_count_is_live_through_cancel_and_fire():
    sched = Scheduler()
    handles = [sched.schedule(float(i + 1), lambda: None) for i in range(5)]
    assert sched.pending_count() == 5
    handles[2].cancel()
    handles[2].cancel()  # double-cancel must not double-decrement
    assert sched.pending_count() == 4
    sched.run(until=2.5)
    assert sched.pending_count() == 2


def test_cancel_after_fire_is_a_noop():
    sched = Scheduler()
    handle = sched.schedule(1.0, lambda: None)
    sched.run()
    handle.cancel()
    assert sched.pending_count() == 0


def test_schedule_delivery_rejects_past():
    sched = Scheduler()
    sched.bind_delivery(lambda src, dst, msg: None)
    sched.schedule(1.0, lambda: None)
    sched.run()
    with pytest.raises(SchedulerError):
        sched.schedule_delivery(0.5, "a", "b", "m")


# ----------------------------------------------------------------------
# same-tick batch drain: run() must stay byte-identical to step()
# ----------------------------------------------------------------------
def _build_soup(sched, log, rng_seed):
    """Load a randomized event soup onto ``sched``, logging every firing.

    The soup exercises everything the batched drain could get wrong:
    long runs of equal timestamps, fused deliveries interleaved with
    generic handles, callbacks that schedule more events *at the current
    tick* (they must join the run in seq order), callbacks that cancel
    not-yet-fired handles, and pre-cancelled entries sitting at the heap
    head.  Identical seeds build identical soups, so two schedulers can
    be driven by different loops and compared event-for-event.
    """
    import random
    rng = random.Random(rng_seed)
    sched.bind_delivery(lambda src, dst, msg: log.append(
        ("dlv", sched.now, src, dst, msg)))
    # a handful of coarse ticks so same-time runs are long
    ticks = sorted(rng.choice([1.0, 1.0, 2.0, 3.0]) for _ in range(40))
    cancellable = []

    def spawn(tag, depth):
        log.append(("cb", sched.now, tag, depth))
        roll = rng.random()  # same rng stream on both schedulers
        if depth < 2 and roll < 0.45:
            # same-tick child: must execute inside the current run
            sched.schedule(0.0, spawn, f"{tag}.s", depth + 1)
        elif depth < 2 and roll < 0.7:
            sched.schedule(1.0, spawn, f"{tag}.f", depth + 1)
        if roll > 0.8 and cancellable:
            cancellable.pop().cancel()

    for index, tick in enumerate(ticks):
        kind = rng.random()
        if kind < 0.4:
            sched.schedule_delivery(tick, "a", "b", f"m{index}")
        elif kind < 0.8:
            sched.schedule_at(tick, spawn, f"e{index}", 0)
        else:
            cancellable.append(
                sched.schedule_at(tick, log.append, ("plain", tick, index)))
    # a pre-cancelled entry at the very head of the heap
    sched.schedule_at(0.5, log.append, ("never", 0.5)).cancel()


def _reference_run(sched, until=None, max_events=None):
    """The unbatched one-``step``-per-event loop ``run()`` replaced."""
    budget = max_events
    while True:
        next_time = sched.peek_time()
        if next_time is None:
            return
        if until is not None and next_time > until:
            sched.now = until
            return
        if budget is not None:
            if budget <= 0:
                raise SimulationLimitReached(
                    f"event budget exhausted at t={sched.now}",
                    sched.events_processed, sched.now)
            budget -= 1
        sched.step()


@pytest.mark.parametrize("seed", range(8))
def test_batched_run_matches_unbatched_reference(seed):
    batched_log, reference_log = [], []
    batched, reference = Scheduler(), Scheduler()
    _build_soup(batched, batched_log, seed)
    _build_soup(reference, reference_log, seed)
    batched.run()
    _reference_run(reference)
    assert batched_log == reference_log
    assert batched.now == reference.now
    assert batched.events_processed == reference.events_processed
    assert batched.pending_count() == reference.pending_count() == 0


@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("until,max_events", [(2.0, None), (None, 13),
                                              (2.0, 13), (None, 1)])
def test_batched_run_matches_reference_under_limits(seed, until, max_events):
    batched_log, reference_log = [], []
    batched, reference = Scheduler(), Scheduler()
    _build_soup(batched, batched_log, seed)
    _build_soup(reference, reference_log, seed)
    outcomes = []
    for sched, log, runner in ((batched, batched_log, None),
                               (reference, reference_log, _reference_run)):
        try:
            if runner is None:
                sched.run(until=until, max_events=max_events)
            else:
                runner(sched, until=until, max_events=max_events)
            outcomes.append(("ok",))
        except SimulationLimitReached as exc:
            outcomes.append(("limit", exc.events_processed, exc.now))
    assert outcomes[0] == outcomes[1]
    assert batched_log == reference_log
    assert batched.now == reference.now
    assert batched.events_processed == reference.events_processed
    assert batched.pending_count() == reference.pending_count()
