"""Service-layer capture: live KVService traffic records and replays.

The loopback load generator records store operations, request/response
frames (in execution order) and drain-window transitions; replay
re-drives the frames through a fresh service and must land on the same
``history_digest`` *and* ``response_digest`` — including requests the
drain window rejected.
"""

import asyncio
import filecmp
import os

import pytest

from repro.capture import (capture_service, load_capture,
                           replay_capture, replay_service_capture,
                           verify_capture)
from repro.service.loadgen import run_loopback_load
from repro.service.protocol import E_UNAVAILABLE, Request
from repro.service.server import KVService

CAPTURE_DIR = os.path.join(os.path.dirname(__file__), "captures")
GOLDEN_SERVICE = os.path.join(CAPTURE_DIR, "service.jsonl")

#: exact arguments the committed service.jsonl was recorded from.
GOLDEN_LOAD = dict(shards=2, clients=2, rounds=1, seed=9)


def test_golden_service_trace_replays():
    report = replay_service_capture(GOLDEN_SERVICE)
    assert report.ok and not report.mismatches
    assert report.history_digest == report.expected_digest


def test_replay_capture_dispatches_on_service_profile():
    report = replay_capture(GOLDEN_SERVICE)
    assert report.mode == "service" and report.ok


def test_loopback_capture_matches_live_run(tmp_path):
    trace = str(tmp_path / "svc.jsonl")
    live = run_loopback_load(capture=trace, **GOLDEN_LOAD)
    replayed = replay_service_capture(trace)
    assert replayed.ok
    assert replayed.history_digest == live.history_digest
    assert replayed.summary["response_digest"] == live.response_digest
    assert replayed.summary["requests_served"] == \
        live.stats["requests_served"]


def test_golden_service_trace_rerecords_byte_identically(tmp_path):
    fresh = str(tmp_path / "service.jsonl")
    run_loopback_load(capture=fresh, **GOLDEN_LOAD)
    assert filecmp.cmp(fresh, GOLDEN_SERVICE, shallow=False), \
        "re-recording the service load changed the trace bytes"


def test_service_trace_records_all_lanes():
    info = verify_capture(GOLDEN_SERVICE)
    assert info["profile"] == "service"
    assert set(info["kinds"]) == {"drain", "frame", "op"}
    # the single STATS request plus one frame per lane round
    assert info["kinds"]["drain"] == 1          # shutdown's begin_drain


def test_drain_window_rejections_roundtrip(tmp_path):
    """Operations refused mid-drain replay as the same refusals."""
    trace = str(tmp_path / "drain.jsonl")
    store = {"shard_count": 1, "n": 9, "t": 1, "seed": 7,
             "client_count": 1}
    session = capture_service(trace, store=store)

    async def drive() -> KVService:
        service = KVService(max_events=2_000_000, capture=session,
                            **store)
        client = service.store.client_pids[0]
        ok = await service.handle(Request.put(1, "k", "v1",
                                              client=client))
        assert ok.ok
        service.begin_drain()
        refused = await service.handle(Request.put(2, "k", "v2",
                                                   client=client))
        assert not refused.ok and refused.error == E_UNAVAILABLE
        service.end_drain()
        read = await service.handle(Request.get(3, "k", client=client))
        assert read.ok and read.value == "v1"
        return service

    service = asyncio.run(drive())
    session.close(service)

    header, events, footer = load_capture(trace)
    frames = [event for event in events if event["kind"] == "frame"]
    drains = [event["drain"] for event in events
              if event["kind"] == "drain"]
    assert drains == ["begin", "end"]
    refusals = [frame for frame in frames
                if frame["frame"]["response"].get("error")
                == E_UNAVAILABLE]
    assert len(refusals) == 1
    assert refusals[0]["frame"]["request"]["id"] == 2

    report = replay_service_capture(trace)
    assert report.ok and not report.mismatches


def test_service_replay_detects_tampered_frame(tmp_path):
    """A frame whose recorded response is edited must not replay ok."""
    import hashlib
    import json

    trace = str(tmp_path / "svc.jsonl")
    run_loopback_load(capture=trace, **GOLDEN_LOAD)
    with open(trace, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    index = next(i for i, line in enumerate(lines)
                 if '"kind":"frame"' in line
                 and '"op":"BATCH"' in line)
    record = json.loads(lines[index])
    record["frame"]["response"]["results"][0] = "tampered"
    lines[index] = json.dumps(record, sort_keys=True,
                              separators=(",", ":")) + "\n"
    # re-seal so the *checksum* is valid and only the content lies
    footer = json.loads(lines[-1])
    del footer["sha256"]
    sha = hashlib.sha256()
    for line in lines[:-1]:
        sha.update(line.encode("utf-8"))
    footer["sha256"] = sha.hexdigest()
    lines[-1] = json.dumps(footer, sort_keys=True,
                           separators=(",", ":")) + "\n"
    with open(trace, "w", encoding="utf-8") as handle:
        handle.writelines(lines)
    report = replay_service_capture(trace, strict=False)
    assert not report.ok
    assert any("frame" in entry for entry in report.mismatches)


def test_service_replay_rejects_workers():
    with pytest.raises(ValueError):
        replay_capture(GOLDEN_SERVICE, workers=2)
