"""Unit tests for execution traces."""

from repro.sim.trace import (DELIVER, FAULT, OP_INVOKE, SEND, Trace,
                             TraceEvent)


def test_emit_records_event():
    trace = Trace()
    trace.emit(1.0, SEND, "w", dst="s1")
    assert len(trace) == 1
    event = trace.events[0]
    assert event.kind == SEND
    assert event.process == "w"
    assert event.detail == {"dst": "s1"}


def test_count_tracks_all_kinds():
    trace = Trace()
    trace.emit(1.0, SEND, "w")
    trace.emit(2.0, SEND, "w")
    trace.emit(3.0, DELIVER, "s1")
    assert trace.count(SEND) == 2
    assert trace.count(DELIVER) == 1
    assert trace.count(FAULT) == 0


def test_filtered_trace_counts_but_does_not_record():
    trace = Trace(record_kinds={OP_INVOKE})
    trace.emit(1.0, SEND, "w")
    trace.emit(2.0, OP_INVOKE, "w", op="write")
    assert trace.count(SEND) == 1
    assert len(trace) == 1
    assert trace.events[0].kind == OP_INVOKE


def test_empty_record_set_drops_everything():
    trace = Trace(record_kinds=set())
    trace.emit(1.0, SEND, "w")
    assert len(trace) == 0
    assert trace.count(SEND) == 1


def test_of_kind_and_by_process_queries():
    trace = Trace()
    trace.emit(1.0, SEND, "w")
    trace.emit(2.0, DELIVER, "s1")
    trace.emit(3.0, SEND, "r")
    assert len(list(trace.of_kind(SEND))) == 2
    assert len(list(trace.by_process("s1"))) == 1


def test_where_predicate():
    trace = Trace()
    trace.emit(1.0, SEND, "w")
    trace.emit(5.0, SEND, "w")
    late = trace.where(lambda event: event.time > 2.0)
    assert len(late) == 1
    assert late[0].time == 5.0


def test_last_time():
    trace = Trace()
    assert trace.last_time() == 0.0
    trace.emit(7.5, SEND, "w")
    assert trace.last_time() == 7.5


def test_format_limits_output():
    trace = Trace()
    for index in range(5):
        trace.emit(float(index), SEND, "w")
    rendered = trace.format(limit=2)
    assert "3 more events" in rendered


def test_event_repr_is_readable():
    event = TraceEvent(1.25, SEND, "w", {"dst": "s1"})
    assert "send" in repr(event)
    assert "s1" in repr(event)


def test_iteration():
    trace = Trace()
    trace.emit(1.0, SEND, "w")
    trace.emit(2.0, SEND, "w")
    assert [event.time for event in trace] == [1.0, 2.0]
